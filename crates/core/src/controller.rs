//! The Willow controller: hierarchical supply/demand adaptation,
//! local-first migration planning, and consolidation.
//!
//! One [`Willow::step`] call is one demand period `Δ_D`:
//!
//! 1. **Measure** — raw per-app demands (supplied by the caller) plus
//!    pending migration costs are smoothed (Eq. 4) into leaf `CP` values
//!    and aggregated up the tree (one upward control message per link).
//! 2. **Supply adaptation** — every `η1` periods, hard caps are refreshed
//!    from the thermal model (Eq. 3 over the `Δ_S` window), and the total
//!    supply is divided top-down proportionally to demand, clipped by caps
//!    (one downward message per link; Property 3: ≤ 2 messages per link per
//!    period).
//! 3. **Demand adaptation** — per-level bottom-up bin packing of deficits
//!    into surpluses: local (sibling) surpluses first, leftovers passed up
//!    for non-local placement, margins enforced at both ends, costs charged
//!    as temporary demand, residual deficits shed.
//! 4. **Consolidation** — every `η2` periods, servers below the utilization
//!    threshold try to empty themselves (local targets preferred); emptied
//!    servers sleep. Sleeping servers may be woken when demand was shed.
//! 5. **Physics** — each server draws `min(demand, budget)` and its RC
//!    thermal state advances by `Δ_D`.

use crate::config::{AllocationPolicy, ControllerConfig, PackerChoice, ReducedTargetRule};
use crate::disturbance::{Disturbances, MigrationOutcome};
use crate::migration::{MigrationReason, MigrationRecord, TickReport};
use crate::server::{ServerSpec, ServerState};
use crate::state::PowerState;
use crate::txn::{MigrationJournal, TxnId};
use std::collections::HashMap;
use willow_binpack::{BestFitDecreasing, Ffdlr, FirstFitDecreasing, NextFit, Packer};
use willow_network::Fabric;
use willow_power::allocation::allocate_proportional_into;
use willow_thermal::limit::power_limit_with_decay;
use willow_thermal::model::{decay_factor, step_temperature_with_decay};
use willow_thermal::units::{Celsius, Watts};
use willow_topology::{NodeId, Tree};
use willow_workload::app::AppId;

/// Errors from [`Willow::new`].
#[derive(Debug, Clone, PartialEq)]
pub enum WillowError {
    /// Config invariant violated.
    Config(crate::config::ConfigError),
    /// The server specs do not cover every leaf exactly once.
    LeafCoverage {
        /// Leaves in the tree.
        leaves: usize,
        /// Server specs supplied.
        specs: usize,
    },
    /// A spec references a non-leaf node.
    NotALeaf(NodeId),
    /// Two specs reference the same leaf.
    DuplicateLeaf(NodeId),
    /// Two applications share an id.
    DuplicateApp(AppId),
    /// A snapshot's auxiliary state vectors do not match its topology
    /// (wrong length for the tree / server count it carries).
    SnapshotShape {
        /// Which snapshot field is malformed.
        field: &'static str,
        /// Entries found.
        found: usize,
        /// Entries required by the snapshot's own topology.
        expected: usize,
    },
}

impl std::fmt::Display for WillowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WillowError::Config(e) => write!(f, "invalid config: {e}"),
            WillowError::LeafCoverage { leaves, specs } => {
                write!(f, "{specs} server specs for {leaves} leaves")
            }
            WillowError::NotALeaf(n) => write!(f, "node {n} is not a leaf"),
            WillowError::DuplicateLeaf(n) => write!(f, "leaf {n} specified twice"),
            WillowError::DuplicateApp(a) => write!(f, "application {a} hosted twice"),
            WillowError::SnapshotShape {
                field,
                found,
                expected,
            } => {
                write!(
                    f,
                    "snapshot field `{field}` has {found} entries, topology requires {expected}"
                )
            }
        }
    }
}

impl std::error::Error for WillowError {}

/// A deficit parcel traveling up the hierarchy: one application that must
/// leave its server.
#[derive(Debug, Clone, Copy)]
struct DeficitItem {
    server: usize,
    app: AppId,
    demand: Watts,
    reason: MigrationReason,
}

/// Reusable working memory for one control tick.
///
/// Every transient collection the hot path needs — child caps and budgets
/// for the top-down division, deficit parcels and their per-level grouping
/// keys, candidate bins, consolidation and evacuation plans — lives here
/// and is cleared (capacity retained) instead of reallocated, so a
/// steady-state `Willow::step_into` performs **zero** heap allocations
/// once the buffers have warmed up. Taken out of the controller with
/// `std::mem::take` for the duration of a tick and put back afterwards.
#[derive(Debug, Default)]
struct ScratchWorkspace {
    /// Child hard caps for one interior node (supply adaptation).
    caps: Vec<Watts>,
    /// Child allocation weights for one interior node.
    weights: Vec<Watts>,
    /// Child budgets written by the proportional division.
    budgets: Vec<Watts>,
    /// Water-filling working set.
    alloc: willow_power::AllocationScratch,
    /// Deficit items still looking for a target (current level).
    pending: Vec<DeficitItem>,
    /// Deficit items deferred to the next level up.
    next_pending: Vec<DeficitItem>,
    /// Per-item grouping keys: (pmu arena idx, child arena idx, item idx).
    keys: Vec<(u32, u32, u32)>,
    /// Items of the group currently being packed (backoff items filtered
    /// straight to the leftovers).
    group: Vec<DeficitItem>,
    /// App ordering for per-server deficit selection.
    order: Vec<usize>,
    /// Candidate target leaves for one packing instance.
    bins: Vec<NodeId>,
    /// Remaining capacity per candidate bin.
    bin_caps: Vec<f64>,
    /// Effective item sizes for one packing instance.
    sizes: Vec<f64>,
    /// Below-threshold server indices (consolidation).
    candidates: Vec<usize>,
    /// Servers that received consolidated load this round.
    received: Vec<bool>,
    /// Apps to move in a full-evacuation plan.
    evac_items: Vec<DeficitItem>,
    /// Effective sizes of the evacuation items.
    evac_sizes: Vec<f64>,
    /// Ordered target bins (siblings first) for an evacuation.
    evac_bins: Vec<NodeId>,
    /// Free capacity per evacuation bin during first-fit placement.
    evac_free: Vec<f64>,
    /// Item placement order (largest first) for an evacuation.
    evac_order: Vec<usize>,
    /// The all-or-nothing evacuation plan.
    evac_plan: Vec<(DeficitItem, NodeId)>,
    /// Sleeping-server indices for wake-on-deficit.
    sleeping: Vec<usize>,
}

impl ScratchWorkspace {
    /// Pre-size the buffers for `tree` so even the first tick allocates as
    /// little as possible: per-node buffers to the maximum branching
    /// factor, per-leaf buffers to the leaf count, per-server buffers to
    /// the server count.
    fn for_tree(tree: &Tree, servers: usize) -> Self {
        let max_branching: usize = (0..=tree.height())
            .map(|l| tree.max_branching_at(l))
            .max()
            .unwrap_or(0);
        let leaves = tree.leaves().count();
        ScratchWorkspace {
            caps: Vec::with_capacity(max_branching),
            weights: Vec::with_capacity(max_branching),
            budgets: Vec::with_capacity(max_branching),
            bins: Vec::with_capacity(leaves),
            bin_caps: Vec::with_capacity(leaves),
            candidates: Vec::with_capacity(servers),
            received: Vec::with_capacity(servers),
            evac_bins: Vec::with_capacity(leaves),
            evac_free: Vec::with_capacity(leaves),
            sleeping: Vec::with_capacity(servers),
            ..ScratchWorkspace::default()
        }
    }
}

/// Per-server stale-directive watchdog state (paper-adjacent defense: a
/// leaf that keeps missing its budget directive falls back to a
/// conservative local cap rather than running open-loop forever).
///
/// Public and serializable because it is part of the controller's complete
/// mutable state: a checkpoint that dropped it would silently reset the
/// degraded-mode defenses on restore (see `crate::snapshot`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Watchdog {
    /// Consecutive supply ticks whose budget directive never arrived.
    pub missed: u32,
    /// Whether the conservative fallback cap is currently engaged.
    pub tripped: bool,
}

/// Exponential retry backoff for an app whose migration failed. Part of
/// the checkpointed state, like [`Watchdog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Backoff {
    /// Failed attempts so far.
    pub failures: u32,
    /// Earliest tick at which another attempt may be made.
    pub retry_at: u64,
}

/// Telemetry spans and gauges are *sampled*: each phase's wall time (and
/// the per-level deficit / fabric gauges) is recorded at most once per
/// this many ticks. Clock reads cost ~20 ns each; timing five phases
/// every tick would burn ~40 % of a small-topology tick, where sampling
/// keeps the instrumented overhead under the 3 % budget while the
/// histograms still accumulate one representative sample per phase per
/// window. Counters are exact — they are plain atomic adds.
pub const SPAN_SAMPLE_PERIOD: u64 = 16;

/// Sampling slots: five phase spans plus the gauge refresh.
const SLOT_AGGREGATE: usize = 0;
const SLOT_ALLOCATE: usize = 1;
const SLOT_PLAN_MIGRATIONS: usize = 2;
const SLOT_CONSOLIDATE: usize = 3;
const SLOT_THERMAL_UPDATE: usize = 4;
const SLOT_GAUGES: usize = 5;

/// Telemetry handles for the controller's hot path. All handles come from
/// one registry via [`Willow::attach_telemetry`]; the `Default` value is
/// fully disabled, so an unattached controller pays one branch per record.
/// Handles are plain atomics — recording allocates nothing, preserving the
/// zero-allocation steady-state tick invariant with telemetry enabled.
#[derive(Debug, Default)]
struct ControllerTelemetry {
    /// Kept for span start tokens ([`TelemetryRegistry::now`]).
    registry: willow_telemetry::TelemetryRegistry,
    span_aggregate: willow_telemetry::Histogram,
    span_allocate: willow_telemetry::Histogram,
    span_plan_migrations: willow_telemetry::Histogram,
    span_consolidate: willow_telemetry::Histogram,
    span_thermal_update: willow_telemetry::Histogram,
    migrations: willow_telemetry::Counter,
    migration_aborts: willow_telemetry::Counter,
    migration_rejects: willow_telemetry::Counter,
    watchdog_trips: willow_telemetry::Counter,
    /// One budget-deficit gauge per tree level (index = level).
    level_deficit: Vec<willow_telemetry::Gauge>,
    fabric: willow_network::FabricTelemetry,
    /// Last window each slot was sampled in (`0` = never); see
    /// [`SPAN_SAMPLE_PERIOD`].
    sampled_window: [u64; 6],
}

impl ControllerTelemetry {
    fn register(registry: &willow_telemetry::TelemetryRegistry, height: u8) -> Self {
        let span = |phase: &str| {
            registry.duration_histogram(
                &format!("willow_controller_phase_{phase}_seconds"),
                "Wall time of this controller phase (sampled once per window)",
            )
        };
        ControllerTelemetry {
            span_aggregate: span("aggregate"),
            span_allocate: span("allocate"),
            span_plan_migrations: span("plan_migrations"),
            span_consolidate: span("consolidate"),
            span_thermal_update: span("thermal_update"),
            migrations: registry.counter(
                "willow_controller_migrations_total",
                "Migrations executed (both reasons)",
            ),
            migration_aborts: registry.counter(
                "willow_controller_migration_aborts_total",
                "Migration attempts aborted mid-flight",
            ),
            migration_rejects: registry.counter(
                "willow_controller_migration_rejects_total",
                "Migration attempts refused admission by the destination",
            ),
            watchdog_trips: registry.counter(
                "willow_controller_watchdog_trips_total",
                "Stale-directive watchdog trips",
            ),
            level_deficit: (0..=height)
                .map(|level| {
                    registry.gauge(
                        &format!("willow_controller_level_deficit_watts_l{level}"),
                        "Summed budget deficit [CP - TP]+ across this tree level",
                    )
                })
                .collect(),
            fabric: willow_network::FabricTelemetry::register(registry),
            registry: registry.clone(),
            sampled_window: [0; 6],
        }
    }

    /// True when `slot` has not been sampled yet in `tick`'s window; marks
    /// it sampled. Always false when the registry is disabled.
    fn due(&mut self, slot: usize, tick: u64) -> bool {
        if !self.registry.is_enabled() {
            return false;
        }
        // +1 so the very first window differs from the never-sampled 0.
        let window = tick / SPAN_SAMPLE_PERIOD + 1;
        if self.sampled_window[slot] == window {
            return false;
        }
        self.sampled_window[slot] = window;
        true
    }

    /// Span start token for `slot`: a clock read on the window's first
    /// opportunity, `None` (making `record_since` a no-op) otherwise.
    fn span_start(&mut self, slot: usize, tick: u64) -> Option<std::time::Instant> {
        if self.due(slot, tick) {
            self.registry.now()
        } else {
            None
        }
    }
}

/// Fault and defense events observed during the current period.
#[derive(Debug, Clone, Copy, Default)]
struct FaultCounters {
    reports_lost: usize,
    directives_lost: usize,
    migration_rejects: usize,
    migration_aborts: usize,
    migration_retries: usize,
    watchdog_trips: usize,
    sensor_rejections: usize,
}

/// Cumulative operation counters backing the paper's §V-A2 complexity
/// analysis: the distributed scheme solves one pod-sized packing instance
/// per PMU node per period, so instances scale with the node count and the
/// work per instance with the branching factor — not with the data center
/// as a whole.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ControlStats {
    /// Bin-packing instances solved (demand-side adaptation).
    pub packing_instances: u64,
    /// Deficit items offered across all instances.
    pub items_offered: u64,
    /// Bins (candidate targets) offered across all instances.
    pub bins_offered: u64,
    /// Control messages exchanged on tree links.
    pub messages: u64,
    /// Migrations executed (both reasons).
    pub migrations: u64,
}

/// The Willow control system. See the crate docs for the model.
pub struct Willow {
    tree: Tree,
    config: ControllerConfig,
    servers: Vec<ServerState>,
    /// Arena index → server index (None for interior nodes).
    leaf_server: Vec<Option<usize>>,
    power: PowerState,
    fabric: Fabric,
    tick: u64,
    /// For each app: the server it last migrated *from* and when. Ping-pong
    /// is defined as the paper does — "migrates demand from server A to B
    /// and then immediately from B to A" — i.e. a return to the previous
    /// host within the `Δ_f` window.
    last_move: HashMap<AppId, (NodeId, u64)>,
    /// Demand shed last period (drives wake-on-deficit).
    last_dropped: Watts,
    /// Cumulative operation counters.
    stats: ControlStats,
    /// Each leaf's *own* view of its smoothed demand, indexed like
    /// `power.cp`. Identical to `power.cp` in fault-free operation; under
    /// report loss `power.cp` keeps the hierarchy's stale view while this
    /// stays current — physics and local deficit detection use this.
    local_cp: Vec<Watts>,
    /// Stale-directive watchdog per server.
    watchdog: Vec<Watchdog>,
    /// Last temperature reading per server that passed the plausibility
    /// filter; caps and predictions are computed from this, never from a
    /// raw (possibly faulted) sensor.
    accepted_temp: Vec<Celsius>,
    /// Per-server decay factor `e^(−c2·Δ_D)` for the physics update —
    /// `c2` and the demand period never change within a run, so the
    /// exponential is evaluated once at construction instead of twice per
    /// server per tick.
    decay_dd: Vec<f64>,
    /// Per-server decay factor `e^(−c2·Δ_S)` for the thermal-cap
    /// prediction on supply ticks.
    decay_ds: Vec<f64>,
    /// Retry backoff for apps whose migrations recently failed.
    backoff: HashMap<AppId, Backoff>,
    /// Write-ahead journal of migration transactions (see `crate::txn`):
    /// every migration runs prepare → transfer → commit through it, so a
    /// crash or dead link mid-flight can never orphan or duplicate an app.
    journal: MigrationJournal,
    /// Disturbances being applied to the period currently in progress.
    disturb: Disturbances,
    /// Migration attempts made so far this period (indexes into the
    /// pre-rolled outcome list).
    mig_attempts: usize,
    /// Fault/defense events observed this period.
    counters: FaultCounters,
    /// Reusable per-tick working memory (see [`ScratchWorkspace`]).
    scratch: ScratchWorkspace,
    /// The configured packing heuristic, boxed once at construction.
    packer: Box<dyn Packer>,
    /// Telemetry handles (disabled until [`Willow::attach_telemetry`]).
    tel: ControllerTelemetry,
}

/// The packing heuristic for `choice`, boxed once at construction time so
/// the hot path never re-boxes it.
fn make_packer(choice: PackerChoice) -> Box<dyn Packer> {
    match choice {
        PackerChoice::Ffdlr => Box::new(Ffdlr),
        PackerChoice::FirstFitDecreasing => Box::new(FirstFitDecreasing),
        PackerChoice::BestFitDecreasing => Box::new(BestFitDecreasing),
        PackerChoice::NextFit => Box::new(NextFit),
    }
}

impl Willow {
    /// Build a controller for `tree` with one [`ServerSpec`] per leaf.
    pub fn new(
        tree: Tree,
        specs: Vec<ServerSpec>,
        config: ControllerConfig,
    ) -> Result<Self, WillowError> {
        config.validate().map_err(WillowError::Config)?;
        let leaves: Vec<NodeId> = tree.leaves().collect();
        if specs.len() != leaves.len() {
            return Err(WillowError::LeafCoverage {
                leaves: leaves.len(),
                specs: specs.len(),
            });
        }
        let mut leaf_server = vec![None; tree.len()];
        let mut servers = Vec::with_capacity(specs.len());
        let mut seen_apps = HashMap::new();
        for spec in &specs {
            if !tree.node(spec.node).is_leaf() {
                return Err(WillowError::NotALeaf(spec.node));
            }
            if leaf_server[spec.node.index()].is_some() {
                return Err(WillowError::DuplicateLeaf(spec.node));
            }
            for app in &spec.apps {
                if seen_apps.insert(app.id, spec.node).is_some() {
                    return Err(WillowError::DuplicateApp(app.id));
                }
            }
            leaf_server[spec.node.index()] = Some(servers.len());
            servers.push(ServerState::from_spec_with_smoother(
                spec,
                crate::server::DemandSmoother::new(config.smoother, config.alpha),
            ));
        }
        let power = PowerState::new(&tree);
        let fabric = Fabric::new(&tree);
        let accepted_temp = servers.iter().map(|s| s.thermal.temperature()).collect();
        let decay_dd = servers
            .iter()
            .map(|s| decay_factor(s.thermal.params(), config.delta_d))
            .collect();
        let decay_ds = servers
            .iter()
            .map(|s| decay_factor(s.thermal.params(), config.delta_s()))
            .collect();
        let watchdog = vec![Watchdog::default(); servers.len()];
        let local_cp = vec![Watts::ZERO; tree.len()];
        let scratch = ScratchWorkspace::for_tree(&tree, servers.len());
        let packer = make_packer(config.packer);
        Ok(Willow {
            tree,
            config,
            servers,
            leaf_server,
            power,
            fabric,
            tick: 0,
            last_move: HashMap::new(),
            last_dropped: Watts::ZERO,
            stats: ControlStats::default(),
            local_cp,
            watchdog,
            accepted_temp,
            decay_dd,
            decay_ds,
            backoff: HashMap::new(),
            journal: MigrationJournal::default(),
            disturb: Disturbances::default(),
            mig_attempts: 0,
            counters: FaultCounters::default(),
            scratch,
            packer,
            tel: ControllerTelemetry::default(),
        })
    }

    /// Register this controller's metrics — per-phase span histograms,
    /// migration/abort/watchdog counters, per-level budget-deficit gauges
    /// and fabric traffic gauges — on `registry` and start recording into
    /// it. Attaching to a disabled registry (or never attaching) leaves
    /// every record a no-op; recording itself never allocates or locks, so
    /// the steady-state zero-allocation tick invariant holds either way.
    pub fn attach_telemetry(&mut self, registry: &willow_telemetry::TelemetryRegistry) {
        self.tel = ControllerTelemetry::register(registry, self.tree.height());
    }

    /// The PMU tree.
    #[must_use]
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Immutable view of server states (indexed by server order).
    #[must_use]
    pub fn servers(&self) -> &[ServerState] {
        &self.servers
    }

    /// The switch fabric's traffic counters for the current period.
    #[must_use]
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Current power state (CP/TP/caps per node).
    #[must_use]
    pub fn power(&self) -> &PowerState {
        &self.power
    }

    /// Cumulative operation counters since construction.
    #[must_use]
    pub fn stats(&self) -> ControlStats {
        self.stats
    }

    /// The demand-period counter (number of completed `step` calls).
    #[must_use]
    pub fn tick_count(&self) -> u64 {
        self.tick
    }

    /// Ping-pong bookkeeping as a serializable list, sorted by app id.
    #[must_use]
    pub fn last_moves(&self) -> Vec<(AppId, NodeId, u64)> {
        let mut out = Vec::new();
        self.last_moves_into(&mut out);
        out
    }

    /// [`Willow::last_moves`] into a caller-provided buffer (cleared
    /// first), so periodic checkpointing can reuse one allocation.
    pub fn last_moves_into(&self, out: &mut Vec<(AppId, NodeId, u64)>) {
        out.clear();
        out.extend(
            self.last_move
                .iter()
                .map(|(&app, &(from, t))| (app, from, t)),
        );
        // App ids are unique map keys, so the unstable sort is total.
        out.sort_unstable_by_key(|(app, _, _)| *app);
    }

    /// Demand shed in the last completed period.
    #[must_use]
    pub fn last_dropped(&self) -> Watts {
        self.last_dropped
    }

    /// Per-server stale-directive watchdog state (indexed by server order).
    #[must_use]
    pub fn watchdogs(&self) -> &[Watchdog] {
        &self.watchdog
    }

    /// Last temperature per server that passed the plausibility filter
    /// (indexed by server order). Caps and predictions derive from these,
    /// never from raw sensor readings.
    #[must_use]
    pub fn accepted_temps(&self) -> &[Celsius] {
        &self.accepted_temp
    }

    /// Each leaf's own view of its smoothed demand, indexed by arena node
    /// id (interior entries are unused and stay zero). Identical to
    /// `power().cp` in fault-free operation; diverges under report loss.
    #[must_use]
    pub fn local_demands(&self) -> &[Watts] {
        &self.local_cp
    }

    /// Migration retry backoff as a serializable list, sorted by app id.
    #[must_use]
    pub fn backoffs(&self) -> Vec<(AppId, Backoff)> {
        let mut out = Vec::new();
        self.backoffs_into(&mut out);
        out
    }

    /// [`Willow::backoffs`] into a caller-provided buffer (cleared first),
    /// so periodic checkpointing can reuse one allocation.
    pub fn backoffs_into(&self, out: &mut Vec<(AppId, Backoff)>) {
        out.clear();
        out.extend(self.backoff.iter().map(|(&app, &b)| (app, b)));
        // App ids are unique map keys, so the unstable sort is total.
        out.sort_unstable_by_key(|(app, _)| *app);
    }

    /// The migration-transaction journal: open transactions plus recently
    /// closed ones (retained for duplicate-commit detection).
    #[must_use]
    pub fn journal(&self) -> &MigrationJournal {
        &self.journal
    }

    /// Rebuild a controller from a previously captured snapshot (the
    /// checkpoint/restore path — see `crate::snapshot`). Validates the
    /// config, the leaf coverage of the server states, and the shape of
    /// every auxiliary state vector against the snapshot's own topology.
    pub(crate) fn from_parts(
        snapshot: crate::snapshot::WillowSnapshot,
    ) -> Result<Willow, WillowError> {
        let crate::snapshot::WillowSnapshot {
            tree,
            config,
            servers,
            power,
            tick,
            last_moves,
            last_dropped,
            local_cp,
            watchdog,
            accepted_temp,
            backoff,
            stats,
            journal,
        } = snapshot;
        config.validate().map_err(WillowError::Config)?;
        let leaves = tree.leaves().count();
        if servers.len() != leaves {
            return Err(WillowError::LeafCoverage {
                leaves,
                specs: servers.len(),
            });
        }
        let shape = |field: &'static str, found: usize, expected: usize| {
            if found == expected {
                Ok(())
            } else {
                Err(WillowError::SnapshotShape {
                    field,
                    found,
                    expected,
                })
            }
        };
        shape("local_cp", local_cp.len(), tree.len())?;
        shape("watchdog", watchdog.len(), servers.len())?;
        shape("accepted_temp", accepted_temp.len(), servers.len())?;
        let mut leaf_server = vec![None; tree.len()];
        for (si, server) in servers.iter().enumerate() {
            if !tree.node(server.node).is_leaf() {
                return Err(WillowError::NotALeaf(server.node));
            }
            if leaf_server[server.node.index()].is_some() {
                return Err(WillowError::DuplicateLeaf(server.node));
            }
            leaf_server[server.node.index()] = Some(si);
        }
        let fabric = Fabric::new(&tree);
        let decay_dd = servers
            .iter()
            .map(|s| decay_factor(s.thermal.params(), config.delta_d))
            .collect();
        let decay_ds = servers
            .iter()
            .map(|s| decay_factor(s.thermal.params(), config.delta_s()))
            .collect();
        let scratch = ScratchWorkspace::for_tree(&tree, servers.len());
        let packer = make_packer(config.packer);
        Ok(Willow {
            tree,
            config,
            servers,
            leaf_server,
            power,
            fabric,
            tick,
            last_move: last_moves
                .into_iter()
                .map(|(app, from, t)| (app, (from, t)))
                .collect(),
            last_dropped,
            stats,
            local_cp,
            watchdog,
            accepted_temp,
            decay_dd,
            decay_ds,
            backoff: backoff.into_iter().collect(),
            journal,
            disturb: Disturbances::default(),
            mig_attempts: 0,
            counters: FaultCounters::default(),
            scratch,
            packer,
            tel: ControllerTelemetry::default(),
        })
    }

    /// Restart a crashed controller from its last periodic `checkpoint`
    /// and reconcile it against `field` — the live leaf-local state that
    /// kept running open-loop while the controller was down (see
    /// [`Willow::step_open_loop`]).
    ///
    /// The checkpoint supplies the controller's *memory* (config, counters,
    /// ping-pong history, retry backoff, the migration journal); the field
    /// supplies *physical truth*, which always wins where the two disagree:
    ///
    /// * **Placement and server state** — migrations committed between the
    ///   checkpoint and the crash are in the field but not the checkpoint,
    ///   so the field's servers (and their smoother/thermal state) are
    ///   adopted wholesale. Nothing moves during an outage (only the
    ///   controller migrates), so this is exact, not approximate.
    /// * **Budgets, caps, watchdogs, accepted temperatures, clock** — the
    ///   leaves' applied budgets (tightened by open-loop watchdogs) and
    ///   filtered sensor state carry over; the restored controller resumes
    ///   at the field's tick, not the checkpoint's.
    /// * **Demand view** — re-learned: each leaf's `CP` is seeded from its
    ///   fresh `local_cp` and re-aggregated up the tree, replacing the
    ///   checkpoint's stale hierarchy view.
    /// * **Ping-pong / backoff memory** — entries whose window already
    ///   elapsed during the outage are expired rather than replayed.
    /// * **In-flight migrations** — journal entries still open in the
    ///   checkpoint never flipped a placement, so they are aborted
    ///   ([`MigrationJournal::resolve_in_flight`]).
    ///
    /// # Errors
    /// Whatever [`WillowSnapshot`](crate::snapshot::WillowSnapshot)
    /// restoration reports, plus [`WillowError::SnapshotShape`] when the
    /// checkpoint's topology does not match the field's.
    pub fn recover(
        checkpoint: crate::snapshot::WillowSnapshot,
        field: &Willow,
    ) -> Result<Willow, WillowError> {
        let mut w = Willow::from_parts(checkpoint)?;
        let shape = |field_name: &'static str, found: usize, expected: usize| {
            if found == expected {
                Ok(())
            } else {
                Err(WillowError::SnapshotShape {
                    field: field_name,
                    found,
                    expected,
                })
            }
        };
        shape("recover.tree", w.tree.len(), field.tree.len())?;
        shape("recover.servers", w.servers.len(), field.servers.len())?;
        for (ours, theirs) in w.servers.iter().zip(&field.servers) {
            shape("recover.leaf", ours.node.index(), theirs.node.index())?;
        }

        // Physical truth from the field.
        w.servers.clone_from(&field.servers);
        w.leaf_server.clone_from(&field.leaf_server);
        w.power.clone_from(&field.power);
        w.local_cp.clone_from(&field.local_cp);
        w.watchdog.clone_from(&field.watchdog);
        w.accepted_temp.clone_from(&field.accepted_temp);
        w.tick = field.tick;
        w.last_dropped = field.last_dropped;

        // Re-learn the demand hierarchy from the leaves' fresh local view,
        // and re-sum the caps the leaves computed for themselves open-loop.
        for server in &w.servers {
            let leaf = server.node.index();
            w.power.cp[leaf] = if server.active {
                w.local_cp[leaf]
            } else {
                Watts::ZERO
            };
        }
        w.power.aggregate_demands(&w.tree);
        w.power.aggregate_caps(&w.tree);

        // Expire memory whose window elapsed during the outage.
        let horizon = w.config.pingpong_window;
        let now = w.tick;
        w.last_move
            .retain(|_, &mut (_, t)| now.saturating_sub(t) < horizon);
        w.backoff.retain(|_, b| b.retry_at > now);
        w.journal.resolve_in_flight();
        Ok(w)
    }

    /// Server index hosting `app`, if any.
    #[must_use]
    pub fn locate_app(&self, app: AppId) -> Option<usize> {
        self.servers.iter().position(|s| s.find_app(app).is_some())
    }

    /// Effective packing size of a demand parcel: the moved demand plus the
    /// temporary cost it charges the target while migrating.
    fn effective_size(&self, demand: Watts) -> f64 {
        (demand + self.config.cost_model.node_cost(demand)).0
    }

    /// Drive one demand period. `app_demand` is indexed by `AppId.0` and
    /// gives each application's raw power demand this period; `supply` is
    /// the data center's total power budget (used on supply ticks).
    ///
    /// Equivalent to [`Willow::step_with`] with no disturbances.
    ///
    /// # Panics
    /// Panics if `app_demand` does not cover every hosted application's id.
    pub fn step(&mut self, app_demand: &[Watts], supply: Watts) -> TickReport {
        self.step_with(app_demand, supply, &Disturbances::default())
    }

    /// Drive one demand period under injected faults (see
    /// [`crate::disturbance`]). With the default (empty) [`Disturbances`]
    /// this is exactly [`Willow::step`] — the fault machinery changes
    /// nothing about fault-free trajectories.
    ///
    /// Allocates a fresh [`TickReport`]; steady-state drivers should prefer
    /// [`Willow::step_into`], which reuses a caller-provided one.
    ///
    /// # Panics
    /// Panics if `app_demand` does not cover every hosted application's id.
    pub fn step_with(
        &mut self,
        app_demand: &[Watts],
        supply: Watts,
        disturb: &Disturbances,
    ) -> TickReport {
        let mut report = TickReport::default();
        self.step_into(app_demand, supply, disturb, &mut report);
        report
    }

    /// [`Willow::step_with`], writing into a caller-provided report instead
    /// of returning a fresh one. `report` is fully overwritten (its buffer
    /// capacity is reused), so one report driven across a run makes the
    /// steady-state no-migration tick free of heap allocation entirely.
    ///
    /// # Panics
    /// Panics if `app_demand` does not cover every hosted application's id.
    pub fn step_into(
        &mut self,
        app_demand: &[Watts],
        supply: Watts,
        disturb: &Disturbances,
        report: &mut TickReport,
    ) {
        self.disturb.assign_from(disturb);
        self.mig_attempts = 0;
        self.counters = FaultCounters::default();
        let tick = self.tick;
        // Age out closed migration transactions; open entries are kept
        // (and an empty journal makes this free on steady-state ticks).
        self.journal.prune(tick);
        let supply_tick = tick.is_multiple_of(u64::from(self.config.eta1));
        let consolidation_tick = tick.is_multiple_of(u64::from(self.config.eta2));
        report.reset(tick, supply_tick, consolidation_tick);
        self.fabric.reset_epoch();
        // The workspace moves out of `self` for the duration of the tick so
        // phase methods can borrow it alongside `&mut self` field access.
        let mut scratch = std::mem::take(&mut self.scratch);

        // ------------------------------------------------ 1. measurement
        let t0 = self.tel.span_start(SLOT_AGGREGATE, tick);
        self.measure(app_demand);
        self.tel.span_aggregate.record_since(t0);
        // Upward demand reports: one message per tree link.
        report.control_messages += self.tree.len() - 1;
        self.stats.messages += (self.tree.len() - 1) as u64;

        // ------------------------------------------- 2. supply adaptation
        if supply_tick {
            let t0 = self.tel.span_start(SLOT_ALLOCATE, tick);
            self.supply_adaptation(supply, &mut scratch);
            self.tel.span_allocate.record_since(t0);
            // Downward budget directives: one message per tree link.
            report.control_messages += self.tree.len() - 1;
            self.stats.messages += (self.tree.len() - 1) as u64;
        }

        // ------------------------------------------- 3. demand adaptation
        let t0 = self.tel.span_start(SLOT_PLAN_MIGRATIONS, tick);
        self.demand_adaptation(tick, &mut scratch, &mut report.migrations);
        self.tel.span_plan_migrations.record_since(t0);

        // --------------------------------------------- 4. consolidation
        if consolidation_tick {
            let t0 = self.tel.span_start(SLOT_CONSOLIDATE, tick);
            self.consolidate(
                tick,
                &mut scratch,
                &mut report.migrations,
                &mut report.slept,
            );
            if self.config.wake_on_deficit && self.last_dropped.0 > 0.0 {
                self.wake_servers(
                    self.last_dropped,
                    tick,
                    &mut scratch.sleeping,
                    &mut report.woken,
                );
            }
            self.tel.span_consolidate.record_since(t0);
        }
        self.scratch = scratch;

        // ------------------------------------------------- 5. physics
        let t0 = self.tel.span_start(SLOT_THERMAL_UPDATE, tick);
        // Re-aggregate interior demands only if a leaf CP changed since
        // the measurement phase aggregated them: executed migrations and
        // aborts charge costs, sleeping zeroes the leaf. On a clean tick
        // the interior sums are already exactly what recomputation would
        // write, so skipping it is bit-neutral.
        let cp_dirty = !report.migrations.is_empty()
            || self.counters.migration_aborts > 0
            || !report.slept.is_empty();
        if cp_dirty {
            self.power.aggregate_demands(&self.tree);
        }
        self.physics_phase(report);
        self.tel.span_thermal_update.record_since(t0);

        self.tel.migrations.add(report.migrations.len() as u64);
        self.tel
            .migration_aborts
            .add(self.counters.migration_aborts as u64);
        self.tel
            .migration_rejects
            .add(self.counters.migration_rejects as u64);
        self.tel
            .watchdog_trips
            .add(self.counters.watchdog_trips as u64);
        if self.tel.due(SLOT_GAUGES, tick) {
            for (level, gauge) in self.tel.level_deficit.iter().enumerate() {
                let deficit = self
                    .tree
                    .nodes_at_level(level as u8)
                    .iter()
                    .map(|&n| self.power.deficit(n))
                    .fold(Watts::ZERO, |a, b| a + b);
                gauge.set(deficit.0);
            }
            self.tel.fabric.observe(&self.fabric);
        }

        self.publish_counters(report);

        self.tick += 1;
    }

    /// Drive one demand period with the central controller *down*: only
    /// the leaf-local control surface runs. Servers keep measuring and
    /// smoothing their own demand, draw against their last applied budget,
    /// advance thermally, and run the sensor plausibility filter — but no
    /// reports flow up, no budgets flow down, and no migrations or
    /// consolidations happen (only the controller initiates them). On
    /// supply ticks every leaf misses its directive, so the stale-directive
    /// watchdogs count, trip at the configured threshold, and budgets can
    /// only *tighten* (clipped by the locally recomputed thermal cap, and
    /// by the fallback fraction once tripped) — exactly the per-leaf
    /// degraded mode of [`Willow::step_into`] under directive loss, applied
    /// fleet-wide.
    ///
    /// Sensor faults in `disturb` still apply (they are physical); message
    /// and migration faults are moot since no messages are sent.
    ///
    /// # Panics
    /// Panics if `app_demand` does not cover every hosted application's id.
    pub fn step_open_loop(
        &mut self,
        app_demand: &[Watts],
        disturb: &Disturbances,
        report: &mut TickReport,
    ) {
        self.disturb.assign_from(disturb);
        self.mig_attempts = 0;
        self.counters = FaultCounters::default();
        let tick = self.tick;
        let supply_tick = tick.is_multiple_of(u64::from(self.config.eta1));
        let consolidation_tick = tick.is_multiple_of(u64::from(self.config.eta2));
        report.reset(tick, supply_tick, consolidation_tick);
        self.fabric.reset_epoch();

        // Leaf-local measurement: smoothing still happens (the machine
        // observes its own load) and `local_cp` stays fresh, but nothing
        // reaches the hierarchy — `power.cp` keeps the controller's last
        // view and no control messages are exchanged.
        for server in self.servers.iter_mut() {
            if server.active {
                for (i, app) in server.apps.iter().enumerate() {
                    let idx = app.id.0 as usize;
                    assert!(
                        idx < app_demand.len(),
                        "demand vector too short for {}",
                        app.id
                    );
                    server.app_demand[i] = app_demand[idx];
                }
                let raw = server.raw_demand();
                let smoothed = server.smoother.observe(raw);
                self.local_cp[server.node.index()] = smoothed;
            } else {
                self.local_cp[server.node.index()] = Watts::ZERO;
            }
            server.pending_cost = Watts::ZERO;
        }

        // On supply ticks every leaf's directive is missing. Each leaf
        // refreshes its *own* thermal cap from its accepted temperature
        // (that computation is local) and applies the same tighten-only
        // fallback it uses for an individually lost directive.
        if supply_tick {
            let window = self.config.delta_s();
            for (si, server) in self.servers.iter().enumerate() {
                let leaf = server.node.index();
                let cap = match self.config.thermal_estimate {
                    crate::config::ThermalEstimate::WindowPrediction => {
                        let limit = if window.is_positive() {
                            power_limit_with_decay(
                                server.thermal.params(),
                                self.accepted_temp[si],
                                server.thermal.ambient(),
                                server.thermal.limit(),
                                self.decay_ds[si],
                            )
                        } else {
                            Watts(f64::INFINITY)
                        };
                        limit.clamp(Watts::ZERO, server.thermal.rating())
                    }
                    crate::config::ThermalEstimate::NaiveThrottle => {
                        if self.accepted_temp[si].0 > server.thermal.limit().0 + 1e-9 {
                            Watts::ZERO
                        } else {
                            server.thermal.rating()
                        }
                    }
                };
                self.power.cap[leaf] = cap;
                self.counters.directives_lost += 1;
                let wd = &mut self.watchdog[si];
                wd.missed += 1;
                if !wd.tripped && wd.missed >= self.config.robustness.watchdog_threshold {
                    wd.tripped = true;
                    self.counters.watchdog_trips += 1;
                }
                let mut fallback = self.power.tp[leaf].min(cap);
                if wd.tripped {
                    let cap_w =
                        server.thermal.rating().0 * self.config.robustness.watchdog_cap_fraction;
                    fallback = fallback.min(Watts(cap_w));
                }
                self.power.tp[leaf] = fallback;
            }
        }

        self.physics_phase(report);
        self.tel
            .watchdog_trips
            .add(self.counters.watchdog_trips as u64);
        self.publish_counters(report);

        self.tick += 1;
    }

    /// Copy the period's fault/defense counters into the report tail —
    /// shared by [`Willow::step_into`] and [`Willow::step_open_loop`].
    fn publish_counters(&mut self, report: &mut TickReport) {
        report.reports_lost = self.counters.reports_lost;
        report.directives_lost = self.counters.directives_lost;
        report.migration_rejects = self.counters.migration_rejects;
        report.migration_aborts = self.counters.migration_aborts;
        report.migration_retries = self.counters.migration_retries;
        report.watchdog_trips = self.counters.watchdog_trips;
        report.sensor_rejections = self.counters.sensor_rejections;
        report.fallback_servers = self.watchdog.iter().filter(|w| w.tripped).count();
    }

    /// The per-server physical update shared by closed- and open-loop
    /// ticks: draw `min(local demand, budget)`, account shed demand by QoS
    /// class, advance the RC thermal model, run the sensor plausibility
    /// filter, record query traffic, and fill the report's per-server and
    /// imbalance vectors.
    fn physics_phase(&mut self, report: &mut TickReport) {
        let mut dropped = Watts::ZERO;
        for (si, server) in self.servers.iter_mut().enumerate() {
            let leaf = server.node.index();
            let budget = self.power.tp[leaf];
            // The server draws against its *own* demand view: report loss
            // fools the hierarchy, not the machine itself.
            let demand = if server.active {
                self.local_cp[leaf]
            } else {
                Watts::ZERO
            };
            let drawn = demand.min(budget);
            let shortfall = (demand - budget).non_negative();
            dropped += shortfall;
            if shortfall.0 > 0.0 {
                // Degraded operation: attribute the shed demand to QoS
                // classes, lowest priority first (§IV-E / §VI).
                let plan =
                    crate::shedding::shed_by_priority(&server.apps, &server.app_demand, shortfall);
                for (acc, class_shed) in report.shed_by_priority.iter_mut().zip(plan.by_class) {
                    *acc += class_shed;
                }
            }
            server.thermal.advance_with_decay(drawn, self.decay_dd[si]);
            // Sensor plausibility filter: accept the (possibly faulted)
            // reading only if it is within `sensor_slack` of what the RC
            // model predicts from the last accepted temperature under the
            // power actually drawn; otherwise keep running on the model.
            let measured = self.disturb.measured_temp(si, server.thermal.temperature());
            let predicted = step_temperature_with_decay(
                server.thermal.params(),
                self.accepted_temp[si],
                server.thermal.ambient(),
                drawn,
                self.decay_dd[si],
            );
            self.accepted_temp[si] =
                if (measured.0 - predicted.0).abs() <= self.config.robustness.sensor_slack {
                    measured
                } else {
                    self.counters.sensor_rejections += 1;
                    predicted
                };
            // Indirect network impact: query traffic follows the workload.
            self.fabric.record_query(
                &self.tree,
                server.node,
                drawn.0 * self.config.query_traffic_per_watt,
            );
            report.server_power.push(drawn);
            report.server_budget.push(budget);
            report.server_temp.push(server.thermal.temperature());
            report.server_active.push(server.active);
        }
        report.dropped_demand = dropped;
        self.last_dropped = dropped;
        for level in 0..=self.tree.height() {
            report
                .imbalance
                .push(self.power.level_imbalance(&self.tree, level));
        }
    }

    /// Smooth raw demands into leaf `CP` values and aggregate upward. A
    /// server whose report is lost keeps running on its own fresh view
    /// (`local_cp`) while the hierarchy keeps the stale `power.cp` entry.
    fn measure(&mut self, app_demand: &[Watts]) {
        for (si, server) in self.servers.iter_mut().enumerate() {
            if server.active {
                for (i, app) in server.apps.iter().enumerate() {
                    let idx = app.id.0 as usize;
                    assert!(
                        idx < app_demand.len(),
                        "demand vector too short for {}",
                        app.id
                    );
                    server.app_demand[i] = app_demand[idx];
                }
                let raw = server.raw_demand();
                let smoothed = server.smoother.observe(raw);
                self.local_cp[server.node.index()] = smoothed;
                if self.disturb.report_lost(si) {
                    self.counters.reports_lost += 1;
                } else {
                    self.power.cp[server.node.index()] = smoothed;
                }
            } else {
                self.local_cp[server.node.index()] = Watts::ZERO;
                self.power.cp[server.node.index()] = Watts::ZERO;
            }
            // Migration costs are charged for exactly one period.
            server.pending_cost = Watts::ZERO;
        }
        self.power.aggregate_demands(&self.tree);
    }

    /// Refresh hard caps from the thermal model and divide the supply
    /// top-down proportional to demand (§IV-D).
    fn supply_adaptation(&mut self, supply: Watts, scratch: &mut ScratchWorkspace) {
        let window = self.config.delta_s();
        for (si, server) in self.servers.iter().enumerate() {
            // Sleeping servers present their wake-up headroom; they are at
            // (or cooling toward) ambient, so this is near their rating.
            // Caps derive from the *accepted* temperature — the reading
            // that passed the plausibility filter — never a raw sensor, so
            // a stuck or noisy sensor cannot zero out a healthy server.
            let cap = match self.config.thermal_estimate {
                crate::config::ThermalEstimate::WindowPrediction => {
                    // `power_limit` with the decay factor cached at
                    // construction (the window is a run constant).
                    let limit = if window.is_positive() {
                        power_limit_with_decay(
                            server.thermal.params(),
                            self.accepted_temp[si],
                            server.thermal.ambient(),
                            server.thermal.limit(),
                            self.decay_ds[si],
                        )
                    } else {
                        Watts(f64::INFINITY)
                    };
                    limit.clamp(Watts::ZERO, server.thermal.rating())
                }
                crate::config::ThermalEstimate::NaiveThrottle => {
                    if self.accepted_temp[si].0 > server.thermal.limit().0 + 1e-9 {
                        Watts::ZERO
                    } else {
                        server.thermal.rating()
                    }
                }
            };
            self.power.cap[server.node.index()] = cap;
        }
        self.power.aggregate_caps(&self.tree);

        self.power.tp_old.copy_from_slice(&self.power.tp);
        let root = self.tree.root();
        self.power.tp[root.index()] = supply.min(self.power.cap[root.index()]);
        for level in (1..=self.tree.height()).rev() {
            for &node in self.tree.nodes_at_level(level) {
                let children = self.tree.children(node);
                scratch.caps.clear();
                scratch
                    .caps
                    .extend(children.iter().map(|c| self.power.cap[c.index()]));
                // The allocation "demand" weights depend on the policy.
                // `ProportionalToCapacity` weights *are* the caps, so that
                // arm borrows `scratch.caps` directly instead of copying it.
                scratch.weights.clear();
                match self.config.allocation {
                    AllocationPolicy::ProportionalToDemand => scratch
                        .weights
                        .extend(children.iter().map(|c| self.power.cp[c.index()])),
                    AllocationPolicy::EqualShare => {
                        scratch.weights.extend(children.iter().map(|_| Watts(1.0)));
                    }
                    AllocationPolicy::ProportionalToCapacity => {}
                }
                let weights: &[Watts] =
                    if self.config.allocation == AllocationPolicy::ProportionalToCapacity {
                        &scratch.caps
                    } else {
                        &scratch.weights
                    };
                allocate_proportional_into(
                    self.power.tp[node.index()],
                    weights,
                    &scratch.caps,
                    &mut scratch.budgets,
                    &mut scratch.alloc,
                )
                .expect("validated inputs");
                for (c, &b) in children.iter().zip(&scratch.budgets) {
                    self.power.tp[c.index()] = b;
                }
            }
        }

        // Stale-directive watchdog. A leaf whose directive is lost never
        // sees the freshly allocated budget: it keeps its previously
        // applied one, clipped by its locally known thermal cap — i.e. the
        // effective budget can only *tighten*, never loosen, without a
        // fresh directive. After `watchdog_threshold` consecutive misses
        // the leaf self-imposes a conservative fallback cap (a fraction of
        // its rating) until a directive gets through again.
        for (si, server) in self.servers.iter().enumerate() {
            let leaf = server.node.index();
            if self.disturb.directive_lost(si) {
                self.counters.directives_lost += 1;
                let wd = &mut self.watchdog[si];
                wd.missed += 1;
                if !wd.tripped && wd.missed >= self.config.robustness.watchdog_threshold {
                    wd.tripped = true;
                    self.counters.watchdog_trips += 1;
                }
                let mut fallback = self.power.tp_old[leaf].min(self.power.cap[leaf]);
                if wd.tripped {
                    let cap_w =
                        server.thermal.rating().0 * self.config.robustness.watchdog_cap_fraction;
                    fallback = fallback.min(Watts(cap_w));
                }
                self.power.tp[leaf] = fallback;
            } else {
                self.watchdog[si] = Watchdog::default();
            }
        }

        // Budget-reduction flags for the unidirectional target rule (after
        // the watchdog, so degraded leaves read as reduced targets).
        for id in self.tree.ids() {
            let i = id.index();
            let reduced = match self.config.reduced_rule {
                ReducedTargetRule::Off => false,
                ReducedTargetRule::Strict => self.power.tp[i].0 < self.power.tp_old[i].0 - 1e-9,
                ReducedTargetRule::Disproportionate => {
                    let old = self.power.tp_old[i].0;
                    let new = self.power.tp[i].0;
                    if old <= 0.0 || new >= old {
                        false
                    } else {
                        match self.tree.parent(id) {
                            None => false, // global events never flag the root
                            Some(p) => {
                                let p_old = self.power.tp_old[p.index()].0;
                                let p_new = self.power.tp[p.index()].0;
                                let parent_ratio = if p_old > 0.0 { p_new / p_old } else { 1.0 };
                                new / old < parent_ratio - 1e-6
                            }
                        }
                    }
                }
            };
            self.power.reduced[i] = reduced;
        }
    }

    /// True if `leaf` may receive migrations: active, not crashed, and
    /// neither it nor any ancestor was flagged as budget-reduced (§IV-E
    /// final rule).
    fn target_eligible(&self, leaf: NodeId) -> bool {
        let Some(si) = self.leaf_server[leaf.index()] else {
            return false;
        };
        if !self.servers[si].active || self.disturb.crashed(si) {
            return false;
        }
        if self.power.reduced[leaf.index()] {
            return false;
        }
        !self
            .tree
            .ancestors(leaf)
            .any(|a| self.power.reduced[a.index()])
    }

    /// Remaining surplus a target server can absorb (margin already
    /// deducted).
    fn bin_capacity(&self, leaf: NodeId) -> Watts {
        (self.power.tp[leaf.index()] - self.power.cp[leaf.index()] - self.config.margin)
            .non_negative()
    }

    /// Bottom-up demand-side adaptation: local packing first, leftovers up.
    fn demand_adaptation(
        &mut self,
        tick: u64,
        scratch: &mut ScratchWorkspace,
        records: &mut Vec<MigrationRecord>,
    ) {
        // Collect deficit items at the leaves.
        self.collect_deficit_items(&mut scratch.pending, &mut scratch.order);

        // Process levels bottom-up; at each level, each PMU node packs the
        // pending items originating in its subtree into surpluses in its
        // subtree (excluding the origin's child-subtree, already tried).
        for level in 1..=self.tree.height() {
            if scratch.pending.is_empty() {
                break;
            }
            // Group items by their PMU node at this level and, within a
            // PMU, by the child subtree containing their origin (already
            // tried one level down). Sorting keys of
            // `(pmu arena idx, child arena idx, item idx)` reproduces the
            // nested-map iteration order exactly: `nodes_at_level` is
            // ascending in arena index, group keys were visited in sorted
            // order, and items within a group in arrival order.
            scratch.keys.clear();
            for (idx, item) in scratch.pending.iter().enumerate() {
                let mut pmu = self.servers[item.server].node;
                let mut child = pmu;
                while self.tree.level(pmu) < level {
                    child = pmu;
                    pmu = self.tree.parent(pmu).expect("levels reach the root");
                }
                scratch
                    .keys
                    .push((pmu.index() as u32, child.index() as u32, idx as u32));
            }
            scratch.keys.sort_unstable();
            scratch.next_pending.clear();
            let mut i = 0;
            while i < scratch.keys.len() {
                let (pmu_idx, child_idx, _) = scratch.keys[i];
                let mut j = i + 1;
                while j < scratch.keys.len()
                    && scratch.keys[j].0 == pmu_idx
                    && scratch.keys[j].1 == child_idx
                {
                    j += 1;
                }
                // Backoff items sit this round out: straight to leftovers,
                // ahead of this group's unplaced items.
                scratch.group.clear();
                for k in i..j {
                    let item = scratch.pending[scratch.keys[k].2 as usize];
                    if self.in_backoff(item.app, tick) {
                        scratch.next_pending.push(item);
                    } else {
                        scratch.group.push(item);
                    }
                }
                self.pack_and_execute(
                    NodeId(pmu_idx),
                    NodeId(child_idx),
                    &scratch.group,
                    &mut scratch.next_pending,
                    &mut scratch.bins,
                    &mut scratch.bin_caps,
                    &mut scratch.sizes,
                    tick,
                    records,
                );
                i = j;
            }
            std::mem::swap(&mut scratch.pending, &mut scratch.next_pending);
        }
        // Items left after the root instance stay on their servers; their
        // demand above budget is shed in the physics phase.
    }

    /// Deficit items: for every active server over budget, pick the largest
    /// apps until the remainder fits under `TP − margin` (cost-adjusted).
    /// Fills `items`; `order` is per-server sorting scratch.
    fn collect_deficit_items(&self, items: &mut Vec<DeficitItem>, order: &mut Vec<usize>) {
        items.clear();
        let overhead = self.config.cost_model.node_overhead;
        for (si, server) in self.servers.iter().enumerate() {
            if !server.active {
                continue;
            }
            let leaf = server.node.index();
            // Deficit detection is local: the server compares its own
            // fresh demand view against its budget, regardless of what the
            // hierarchy believes.
            let cp = self.local_cp[leaf];
            let tp = self.power.tp[leaf];
            let excess = (cp - tp + self.config.margin).non_negative();
            if excess.0 <= 1e-9 {
                continue;
            }
            // Shedding `shed` relieves `shed·(1 − overhead)` net of the
            // temporary cost charged back to the source.
            let target_shed = if overhead < 1.0 {
                excess.0 / (1.0 - overhead)
            } else {
                excess.0
            };
            // Settled apps first (Property 4: a demand that migrated stays
            // put for ≥ Δ_f whenever possible), then largest-first to
            // minimize the number of migrations.
            order.clear();
            order.extend(0..server.apps.len());
            let tick = self.tick;
            order.sort_unstable_by(|&a, &b| {
                let recent = |i: usize| {
                    self.last_move
                        .get(&server.apps[i].id)
                        .is_some_and(|&(_, t)| tick.saturating_sub(t) < self.config.pingpong_window)
                };
                recent(a)
                    .cmp(&recent(b)) // settled (false) before recent (true)
                    .then(server.app_demand[b].0.total_cmp(&server.app_demand[a].0))
                    .then(a.cmp(&b))
            });
            let mut shed = 0.0;
            for &idx in order.iter() {
                if shed >= target_shed {
                    break;
                }
                let demand = server.app_demand[idx];
                if demand.0 <= 0.0 {
                    continue;
                }
                shed += demand.0;
                items.push(DeficitItem {
                    server: si,
                    app: server.apps[idx].id,
                    demand,
                    reason: MigrationReason::Demand,
                });
            }
        }
    }

    /// Pack `items` (already backoff-filtered) into eligible surpluses
    /// among `pmu`'s leaves minus those under `child`; execute the
    /// migrations that fit; push leftovers for the next level up.
    #[allow(clippy::too_many_arguments)]
    fn pack_and_execute(
        &mut self,
        pmu: NodeId,
        child: NodeId,
        items: &[DeficitItem],
        leftovers: &mut Vec<DeficitItem>,
        bins: &mut Vec<NodeId>,
        bin_caps: &mut Vec<f64>,
        sizes: &mut Vec<f64>,
        tick: u64,
        records: &mut Vec<MigrationRecord>,
    ) {
        // Candidate bins come off the cached Euler-tour range in DFS order;
        // sorting restores the ascending-id order the packing has always
        // seen (`subtree_leaves` returns sorted ids).
        bins.clear();
        for &leaf in self.tree.leaf_range(pmu) {
            if !self.tree.subtree_contains(child, leaf) && self.target_eligible(leaf) {
                bins.push(leaf);
            }
        }
        bins.sort_unstable();
        if bins.is_empty() {
            leftovers.extend_from_slice(items);
            return;
        }
        bin_caps.clear();
        bin_caps.extend(bins.iter().map(|&l| self.bin_capacity(l).0));
        sizes.clear();
        sizes.extend(items.iter().map(|it| self.effective_size(it.demand)));
        self.stats.packing_instances += 1;
        self.stats.items_offered += sizes.len() as u64;
        self.stats.bins_offered += bin_caps.len() as u64;
        let packing = self.packer.pack(sizes, bin_caps);

        for (i, item) in items.iter().enumerate() {
            match packing.assignment[i] {
                Some(b) => {
                    let target_leaf = bins[b];
                    // Property 4 / ping-pong avoidance: never bounce an app
                    // straight back to the host it recently left — defer it
                    // to the next level (other bins) or shed it instead.
                    if self.would_pingpong(item.app, target_leaf, tick)
                        || !self.attempt_migration(item, target_leaf, tick, records)
                    {
                        leftovers.push(*item);
                    }
                }
                None => leftovers.push(*item),
            }
        }
    }

    /// True if placing `app` on `target` now would return it to the host it
    /// left within the ping-pong window `Δ_f`.
    fn would_pingpong(&self, app: AppId, target: NodeId, tick: u64) -> bool {
        self.last_move.get(&app).is_some_and(|&(prev_from, t)| {
            target == prev_from && tick.saturating_sub(t) < self.config.pingpong_window
        })
    }

    /// Is `app` still waiting out its retry backoff at `tick`?
    fn in_backoff(&self, app: AppId, tick: u64) -> bool {
        self.backoff.get(&app).is_some_and(|b| tick < b.retry_at)
    }

    /// Record a failed migration attempt for `app` and schedule its next
    /// eligible attempt with exponential backoff.
    fn register_failure(&mut self, app: AppId, tick: u64) {
        let rb = self.config.robustness;
        let entry = self.backoff.entry(app).or_insert(Backoff {
            failures: 0,
            retry_at: 0,
        });
        entry.failures += 1;
        let exp = (entry.failures - 1).min(rb.retry_cap);
        let delay = rb.retry_base.saturating_mul(1u64 << exp);
        entry.retry_at = tick.saturating_add(delay);
    }

    /// Try to migrate `item` to `target_leaf` as a transaction (see
    /// `crate::txn`), consuming the next pre-rolled outcome. On `Success`
    /// the transaction runs prepare → transfer → commit and the move
    /// happens (a cleared backoff counts as a successful retry); on
    /// `Reject` the transaction aborts straight from `Prepared` — nothing
    /// is charged; on `Abort` it aborts from `Transferred` — the copy work
    /// already happened, so both end nodes pay the temporary cost and the
    /// fabric carried the traffic, but the app stays at the source. Both
    /// failure modes enter the app into retry backoff. Returns whether the
    /// app moved.
    fn attempt_migration(
        &mut self,
        item: &DeficitItem,
        target_leaf: NodeId,
        tick: u64,
        records: &mut Vec<MigrationRecord>,
    ) -> bool {
        let attempt = self.mig_attempts;
        self.mig_attempts += 1;
        let txn = self.prepare_migration(item, target_leaf, tick);
        match self.disturb.migration_outcome(attempt) {
            MigrationOutcome::Success => {
                if self.backoff.remove(&item.app).is_some() {
                    self.counters.migration_retries += 1;
                }
                self.transfer_migration(txn);
                let committed = self.commit_migration(txn, records);
                debug_assert!(committed, "a fresh transaction must commit");
                true
            }
            MigrationOutcome::Reject => {
                // Admission refused before any copy work: abort from
                // `Prepared`, charging nothing.
                self.abort_migration(txn);
                self.counters.migration_rejects += 1;
                self.register_failure(item.app, tick);
                false
            }
            MigrationOutcome::Abort => {
                // Dead link / crash mid-copy: the transfer's work was real,
                // the placement flip never happened.
                self.counters.migration_aborts += 1;
                self.transfer_migration(txn);
                self.abort_migration(txn);
                self.register_failure(item.app, tick);
                false
            }
        }
    }

    /// Transaction phase 1 — **prepare**: validate the attempt and open a
    /// journal entry. Nothing is charged; the app keeps running at the
    /// source.
    fn prepare_migration(&mut self, item: &DeficitItem, target_leaf: NodeId, tick: u64) -> TxnId {
        let src_leaf = self.servers[item.server].node;
        debug_assert!(
            self.servers[item.server].find_app(item.app).is_some(),
            "preparing a migration for an app not hosted at its source"
        );
        debug_assert!(
            self.leaf_server[target_leaf.index()].is_some(),
            "preparing a migration to a non-server target"
        );
        self.journal.begin(
            item.app,
            src_leaf,
            target_leaf,
            item.demand,
            item.reason,
            tick,
        )
    }

    /// Transaction phase 2 — **transfer**: the copy work. Both end nodes
    /// pay the temporary cost for one period (§IV-E) and the fabric
    /// carries the traffic. This happens whether the transaction later
    /// commits or aborts — aborting cannot refund work already done.
    fn transfer_migration(&mut self, txn: TxnId) {
        let e = *self
            .journal
            .entry(txn)
            .expect("transferring a live transaction");
        let src_idx = self.leaf_server[e.from.index()].expect("source is a server leaf");
        let tgt_idx = self.leaf_server[e.to.index()].expect("target is a server leaf");
        let local = self.tree.are_siblings(e.from, e.to);
        let cost = self.config.cost_model.end_node_cost(e.demand, local);
        self.servers[src_idx].pending_cost += cost;
        self.servers[tgt_idx].pending_cost += cost;
        let units = self.config.cost_model.traffic_units(e.demand);
        self.fabric
            .record_migration(&self.tree, e.from, e.to, units);
        self.journal.mark_transferred(txn);
    }

    /// Transaction phase 3 — **commit**: flip the placement at the target
    /// and update every demand view. Idempotent: committing an
    /// already-committed (or aborted) transaction returns `false` and
    /// changes nothing, so duplicated commit messages can never
    /// double-move an app. Returns whether *this* call performed the move.
    fn commit_migration(&mut self, txn: TxnId, records: &mut Vec<MigrationRecord>) -> bool {
        let e = match self.journal.entry(txn) {
            Some(e) => *e,
            None => return false,
        };
        if !self.journal.commit(txn) {
            return false;
        }
        let src_idx = self.leaf_server[e.from.index()].expect("source is a server leaf");
        let tgt_idx = self.leaf_server[e.to.index()].expect("target is a server leaf");
        debug_assert_ne!(src_idx, tgt_idx, "cannot migrate to self");

        let app_pos = self.servers[src_idx]
            .find_app(e.app)
            .expect("committed app still hosted at source");
        let (app, demand) = self.servers[src_idx].take_app(app_pos);
        self.servers[tgt_idx].host_app(app, demand);

        let local = self.tree.are_siblings(e.from, e.to);
        let cost = self.config.cost_model.end_node_cost(demand, local);

        // Keep leaf CPs current so later packing sees updated surpluses.
        self.power.cp[e.from.index()] =
            (self.power.cp[e.from.index()] - demand).non_negative() + cost;
        self.power.cp[e.to.index()] += demand + cost;
        self.local_cp[e.from.index()] =
            (self.local_cp[e.from.index()] - demand).non_negative() + cost;
        self.local_cp[e.to.index()] += demand + cost;

        let hops = self.tree.path_len(e.from, e.to) - 1; // switches on path
                                                         // Ping-pong: the app returns to the host it last left, within Δ_f.
        let pingpong = self.last_move.get(&e.app).is_some_and(|&(prev_from, t)| {
            e.to == prev_from && e.tick.saturating_sub(t) < self.config.pingpong_window
        });
        self.last_move.insert(e.app, (e.from, e.tick));

        self.stats.migrations += 1;
        records.push(MigrationRecord {
            tick: e.tick,
            app: e.app,
            from: e.from,
            to: e.to,
            moved: demand,
            reason: e.reason,
            local,
            hops,
            pingpong,
        });
        true
    }

    /// Explicit **abort**, legal from either open phase: the app stays at
    /// the source. An abort after transfer charges the copy cost into both
    /// ends' demand views (the work was real); an abort from `Prepared`
    /// charges nothing.
    fn abort_migration(&mut self, txn: TxnId) {
        let e = *self
            .journal
            .entry(txn)
            .expect("aborting a live transaction");
        if e.phase == crate::txn::TxnPhase::Transferred {
            let local = self.tree.are_siblings(e.from, e.to);
            let cost = self.config.cost_model.end_node_cost(e.demand, local);
            self.power.cp[e.from.index()] += cost;
            self.power.cp[e.to.index()] += cost;
            self.local_cp[e.from.index()] += cost;
            self.local_cp[e.to.index()] += cost;
        }
        self.journal.abort(txn);
    }

    /// Consolidation (§IV-E end, §V-C5): below-threshold servers try to
    /// empty themselves — local targets first — and sleep if they succeed.
    fn consolidate(
        &mut self,
        tick: u64,
        scratch: &mut ScratchWorkspace,
        records: &mut Vec<MigrationRecord>,
        slept: &mut Vec<NodeId>,
    ) {
        let first_record = records.len();
        // Candidates ordered thermally constrained (lowest hard cap, i.e.
        // hot zones) first, then emptiest first: the paper's Fig. 7 notes
        // that Willow "tries to move as much work away from these [hot]
        // servers as possible … hence they remain shut down for more time".
        scratch.candidates.clear();
        scratch
            .candidates
            .extend((0..self.servers.len()).filter(|&i| {
                self.servers[i].active
                    && self.servers[i].utilization() < self.config.consolidation_threshold
            }));
        scratch.candidates.sort_unstable_by(|&a, &b| {
            let cap = |i: usize| self.power.cap[self.servers[i].node.index()].0;
            cap(a)
                .total_cmp(&cap(b))
                .then(
                    self.servers[a]
                        .utilization()
                        .total_cmp(&self.servers[b].utilization()),
                )
                .then(a.cmp(&b))
        });

        // Servers that receive consolidated load this round must not be
        // evacuated in the same round — that would cascade apps through
        // multiple hops in a single period.
        scratch.received.clear();
        scratch.received.resize(self.servers.len(), false);
        for ci in 0..scratch.candidates.len() {
            let si = scratch.candidates[ci];
            // Re-check: a candidate may have received load meanwhile.
            if scratch.received[si]
                || !self.servers[si].active
                || self.servers[si].utilization() >= self.config.consolidation_threshold
            {
                continue;
            }
            let leaf = self.servers[si].node;
            if self.servers[si].apps.is_empty() {
                self.sleep_server(si, tick);
                slept.push(leaf);
                continue;
            }
            if self.plan_full_evacuation(
                si,
                &mut scratch.evac_items,
                &mut scratch.evac_sizes,
                &mut scratch.evac_bins,
                &mut scratch.evac_free,
                &mut scratch.evac_order,
                &mut scratch.evac_plan,
            ) {
                // A failed attempt mid-plan (injected reject/abort) stops
                // the evacuation: the server keeps its remaining apps and
                // stays awake — never sleep a server that still hosts work.
                let mut evacuated = true;
                for pi in 0..scratch.evac_plan.len() {
                    let (item, target) = scratch.evac_plan[pi];
                    let tgt_idx =
                        self.leaf_server[target.index()].expect("target is a server leaf");
                    if self.attempt_migration(&item, target, tick, records) {
                        scratch.received[tgt_idx] = true;
                    } else {
                        evacuated = false;
                        break;
                    }
                }
                if evacuated {
                    debug_assert!(self.servers[si].apps.is_empty());
                    self.sleep_server(si, tick);
                    slept.push(leaf);
                }
            }
        }
        // Consolidation migrations are re-labeled with their reason; demand
        // records recorded earlier this tick sit before `first_record`.
        for r in &mut records[first_record..] {
            r.reason = MigrationReason::Consolidation;
        }
    }

    /// Try to place *all* apps of server `si` elsewhere (local bins first,
    /// then anywhere eligible). Fills `plan` and returns `true`, or returns
    /// `false` if the server cannot be fully evacuated.
    #[allow(clippy::too_many_arguments)]
    fn plan_full_evacuation(
        &self,
        si: usize,
        items: &mut Vec<DeficitItem>,
        sizes: &mut Vec<f64>,
        bins: &mut Vec<NodeId>,
        free: &mut Vec<f64>,
        order: &mut Vec<usize>,
        plan: &mut Vec<(DeficitItem, NodeId)>,
    ) -> bool {
        plan.clear();
        let leaf = self.servers[si].node;
        // All-or-nothing: an app still in retry backoff blocks evacuation.
        if self.servers[si]
            .apps
            .iter()
            .any(|a| self.in_backoff(a.id, self.tick))
        {
            return false;
        }
        items.clear();
        items.extend(
            self.servers[si]
                .apps
                .iter()
                .enumerate()
                .map(|(i, app)| DeficitItem {
                    server: si,
                    app: app.id,
                    demand: self.servers[si].app_demand[i],
                    reason: MigrationReason::Consolidation,
                }),
        );
        sizes.clear();
        sizes.extend(items.iter().map(|it| self.effective_size(it.demand)));

        // Eligible bins: siblings first, then the rest of the data center.
        // Within each class: coolest zone (largest hard cap) first so
        // consolidated load lands where thermal headroom is, then
        // most-utilized first so consolidation fills the fullest servers
        // (the FFDLR "run every server at full utilization" rationale)
        // instead of cascading load through near-idle ones.
        let mut by_fill_desc = |a: &NodeId, b: &NodeId| {
            let cap = |n: NodeId| self.power.cap[n.index()].0;
            let util = |n: NodeId| {
                self.leaf_server[n.index()].map_or(0.0, |i| self.servers[i].utilization())
            };
            cap(*b)
                .total_cmp(&cap(*a))
                .then(util(*b).total_cmp(&util(*a)))
                .then(a.cmp(b))
        };
        bins.clear();
        bins.extend(
            self.tree
                .siblings(leaf)
                .filter(|&l| self.target_eligible(l)),
        );
        let n_siblings = bins.len();
        bins[..n_siblings].sort_unstable_by(&mut by_fill_desc);
        for l in self.tree.leaves() {
            if l != leaf && self.target_eligible(l) && !bins[..n_siblings].contains(&l) {
                bins.push(l);
            }
        }
        bins[n_siblings..].sort_unstable_by(&mut by_fill_desc);
        if bins.is_empty() {
            return false;
        }
        // First-fit over the ordered bins keeps the locality preference;
        // a full FFDLR over the union would not honor sibling priority.
        free.clear();
        free.extend(bins.iter().map(|&l| self.bin_capacity(l).0));
        order.clear();
        order.extend(0..items.len());
        order.sort_unstable_by(|&a, &b| sizes[b].total_cmp(&sizes[a]).then(a.cmp(&b)));
        let tick = self.tick;
        for &i in order.iter() {
            let placed = free.iter().enumerate().position(|(b, &f)| {
                sizes[i] <= f + 1e-12 && !self.would_pingpong(items[i].app, bins[b], tick)
            });
            match placed {
                Some(b) => {
                    free[b] -= sizes[i];
                    plan.push((items[i], bins[b]));
                }
                None => return false, // all-or-nothing evacuation
            }
        }
        true
    }

    fn sleep_server(&mut self, si: usize, tick: u64) {
        let server = &mut self.servers[si];
        server.active = false;
        server.last_activity_change = tick;
        server.smoother.reset();
        self.power.cp[server.node.index()] = Watts::ZERO;
        self.local_cp[server.node.index()] = Watts::ZERO;
    }

    // ------------------------------------------------------------------
    // Operator / failure-injection API
    // ------------------------------------------------------------------

    /// Change a server's ambient temperature mid-run — a cooling failure
    /// (ambient rises) or repair (ambient falls). The next supply tick
    /// recomputes the thermal cap from the new environment and the
    /// demand-side machinery migrates workload accordingly.
    ///
    /// # Panics
    /// Panics if `server` is out of range.
    pub fn set_server_ambient(&mut self, server: usize, ambient: willow_thermal::units::Celsius) {
        self.servers[server].thermal.set_ambient(ambient);
    }

    /// Drain a server for maintenance: try to evacuate every hosted app
    /// (margins respected) and put it to sleep. Returns `true` on success;
    /// on failure the server is left untouched and awake.
    ///
    /// # Panics
    /// Panics if `server` is out of range.
    pub fn drain_server(&mut self, server: usize) -> bool {
        if !self.servers[server].active {
            return true;
        }
        let tick = self.tick;
        if self.servers[server].apps.is_empty() {
            self.sleep_server(server, tick);
            return true;
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        let planned = self.plan_full_evacuation(
            server,
            &mut scratch.evac_items,
            &mut scratch.evac_sizes,
            &mut scratch.evac_bins,
            &mut scratch.evac_free,
            &mut scratch.evac_order,
            &mut scratch.evac_plan,
        );
        let mut drained = planned;
        if planned {
            let mut records = Vec::new();
            for pi in 0..scratch.evac_plan.len() {
                let (item, target) = scratch.evac_plan[pi];
                if !self.attempt_migration(&item, target, tick, &mut records) {
                    // Injected failure mid-drain: already-moved apps stay
                    // moved, but the server keeps the rest and stays awake.
                    drained = false;
                    break;
                }
            }
            if drained {
                debug_assert!(self.servers[server].apps.is_empty());
                self.sleep_server(server, tick);
            }
        }
        self.scratch = scratch;
        drained
    }

    /// Wake a sleeping server (after maintenance). No-op if already awake.
    ///
    /// # Panics
    /// Panics if `server` is out of range.
    pub fn force_wake(&mut self, server: usize) {
        if !self.servers[server].active {
            let tick = self.tick;
            self.servers[server].active = true;
            self.servers[server].last_activity_change = tick;
        }
    }

    /// Wake sleeping servers (largest thermal headroom first) until their
    /// combined ratings cover `needed`, appending the woken leaves to
    /// `woken`. `sleeping` is sorting scratch.
    fn wake_servers(
        &mut self,
        needed: Watts,
        tick: u64,
        sleeping: &mut Vec<usize>,
        woken: &mut Vec<NodeId>,
    ) {
        sleeping.clear();
        sleeping.extend((0..self.servers.len()).filter(|&i| !self.servers[i].active));
        sleeping.sort_unstable_by(|&a, &b| {
            self.servers[b]
                .thermal
                .rating()
                .0
                .total_cmp(&self.servers[a].thermal.rating().0)
                .then(a.cmp(&b))
        });
        let mut covered = Watts::ZERO;
        for &si in sleeping.iter() {
            if covered >= needed {
                break;
            }
            let server = &mut self.servers[si];
            server.active = true;
            server.last_activity_change = tick;
            covered += server.thermal.rating();
            woken.push(server.node);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ControllerConfig;
    use willow_thermal::units::Celsius;
    use willow_workload::app::{Application, SIM_APP_CLASSES};

    /// Two pods of two servers each; app i on server i with ~`w` watts mean.
    fn small_setup(apps_per_server: usize) -> (Tree, Vec<ServerSpec>, usize) {
        let tree = Tree::uniform(&[2, 2]);
        let mut next_id = 0u32;
        let specs: Vec<ServerSpec> = tree
            .leaves()
            .map(|leaf| {
                let apps: Vec<Application> = (0..apps_per_server)
                    .map(|_| {
                        let a = Application::new(AppId(next_id), 0, &SIM_APP_CLASSES[0]);
                        next_id += 1;
                        a
                    })
                    .collect();
                ServerSpec::simulation_default(leaf).with_apps(apps)
            })
            .collect();
        (tree, specs, next_id as usize)
    }

    fn demands(n: usize, w: f64) -> Vec<Watts> {
        vec![Watts(w); n]
    }

    #[test]
    fn constructor_validates() {
        let (tree, specs, _) = small_setup(1);
        assert!(Willow::new(tree.clone(), specs.clone(), ControllerConfig::default()).is_ok());
        // Too few specs.
        let err = Willow::new(
            tree.clone(),
            specs[..2].to_vec(),
            ControllerConfig::default(),
        );
        assert!(matches!(err, Err(WillowError::LeafCoverage { .. })));
        // Duplicate leaf.
        let mut dup = specs.clone();
        dup[1].node = dup[0].node;
        assert!(matches!(
            Willow::new(tree.clone(), dup, ControllerConfig::default()),
            Err(WillowError::DuplicateLeaf(_))
        ));
        // Duplicate app id.
        let mut dup_app = specs.clone();
        let a = dup_app[0].apps[0].clone();
        dup_app[1].apps = vec![a];
        assert!(matches!(
            Willow::new(tree.clone(), dup_app, ControllerConfig::default()),
            Err(WillowError::DuplicateApp(_))
        ));
        // Non-leaf spec.
        let mut non_leaf = specs;
        non_leaf[0].node = tree.root();
        assert!(matches!(
            Willow::new(tree, non_leaf, ControllerConfig::default()),
            Err(WillowError::NotALeaf(_))
        ));
    }

    #[test]
    fn ample_supply_no_migrations_no_drops() {
        let (tree, specs, n_apps) = small_setup(1);
        let mut w = Willow::new(tree, specs, ControllerConfig::default()).unwrap();
        for _ in 0..20 {
            let r = w.step(&demands(n_apps, 10.0), Watts(10_000.0));
            assert_eq!(r.dropped_demand, Watts(0.0));
            assert_eq!(
                r.migrations_by_reason(MigrationReason::Demand),
                0,
                "no deficit ⇒ no demand-driven migrations"
            );
            assert_eq!(r.pingpongs(), 0);
        }
    }

    #[test]
    fn budgets_allocated_proportionally_to_demand() {
        let (tree, specs, n_apps) = small_setup(1);
        let mut w = Willow::new(tree, specs, ControllerConfig::default()).unwrap();
        // Unequal demands; ample supply: each server's budget ≥ demand.
        let mut d = demands(n_apps, 10.0);
        d[0] = Watts(40.0);
        let r = w.step(&d, Watts(10_000.0));
        assert!(r.server_budget[0] >= Watts(40.0));
        for i in 1..4 {
            assert!(r.server_budget[i] >= Watts(10.0));
        }
    }

    #[test]
    fn supply_plunge_triggers_migration_under_equal_share() {
        // The testbed scenario (§V-C4): equal-share budgets, a supply
        // plunge leaves the loaded server deficient while idle servers keep
        // surplus ⇒ demand-driven migration.
        let (tree, specs, n_apps) = small_setup(2);
        let mut cfg = ControllerConfig::default();
        cfg.margin = Watts(5.0);
        cfg.eta1 = 1; // supply adaptation every tick
        cfg.eta2 = 2;
        cfg.consolidation_threshold = 0.0; // isolate demand-driven behaviour
        cfg.allocation = AllocationPolicy::EqualShare;
        let mut w = Willow::new(tree, specs, cfg).unwrap();
        // Server 0 hosts apps 0, 1 at 60 W each; everyone else idles at 10 W.
        let mut d = demands(n_apps, 10.0);
        d[0] = Watts(60.0);
        d[1] = Watts(60.0);
        let r = w.step(&d, Watts(800.0)); // 200 W each: no deficit
        assert_eq!(r.migrations_by_reason(MigrationReason::Demand), 0);
        // Plunge: 100 W each. Server 0 (demand 120) is deficient; siblings
        // (demand 20) have surplus 75 ≥ app's effective 63.
        let r = w.step(&d, Watts(400.0));
        let demand_migs: Vec<_> = r
            .migrations
            .iter()
            .filter(|m| m.reason == MigrationReason::Demand)
            .collect();
        assert!(!demand_migs.is_empty(), "plunge must trigger migration");
        assert!(
            demand_migs.iter().all(|m| m.from == w.servers()[0].node),
            "migrations must come off the loaded server"
        );
    }

    #[test]
    fn migrations_prefer_siblings() {
        // Server 0 in deficit; both its sibling (server 1) and the other pod
        // have surplus ⇒ the migration must use the sibling (local).
        let (tree, specs, n_apps) = small_setup(2);
        let mut cfg = ControllerConfig::default();
        cfg.margin = Watts(5.0);
        cfg.eta1 = 1;
        cfg.eta2 = 2;
        cfg.consolidation_threshold = 0.0;
        cfg.allocation = AllocationPolicy::EqualShare;
        let mut w = Willow::new(tree, specs, cfg).unwrap();
        let mut d = demands(n_apps, 10.0);
        d[0] = Watts(60.0);
        d[1] = Watts(60.0);
        let _ = w.step(&d, Watts(800.0));
        let r = w.step(&d, Watts(400.0));
        let demand_migs: Vec<_> = r
            .migrations
            .iter()
            .filter(|m| m.reason == MigrationReason::Demand)
            .collect();
        assert!(!demand_migs.is_empty());
        assert!(
            demand_migs.iter().all(|m| m.local),
            "sibling surplus must be preferred: {demand_migs:?}"
        );
    }

    #[test]
    fn demand_dropped_when_no_surplus_anywhere() {
        let (tree, specs, n_apps) = small_setup(1);
        let mut cfg = ControllerConfig::default();
        cfg.wake_on_deficit = false;
        let mut w = Willow::new(tree, specs, cfg).unwrap();
        // Demand far beyond the total supply.
        let d = demands(n_apps, 200.0);
        let mut r = TickReport::default();
        for _ in 0..5 {
            r = w.step(&d, Watts(100.0));
        }
        assert!(r.dropped_demand.0 > 0.0, "undersupply must shed demand");
    }

    #[test]
    fn consolidation_empties_idle_server_and_sleeps_it() {
        let (tree, specs, n_apps) = small_setup(1);
        let mut cfg = ControllerConfig::default();
        cfg.consolidation_threshold = 0.2; // 90 W on a 450 W server
        let mut w = Willow::new(tree, specs, cfg).unwrap();
        // All servers lightly loaded; ample supply.
        let d = demands(n_apps, 20.0);
        let mut slept_any = false;
        let mut consolidation_migs = 0;
        for _ in 0..15 {
            let r = w.step(&d, Watts(10_000.0));
            slept_any |= !r.slept.is_empty();
            consolidation_migs += r.migrations_by_reason(MigrationReason::Consolidation);
        }
        assert!(slept_any, "idle servers must be consolidated away");
        assert!(consolidation_migs > 0);
        let active = w.servers().iter().filter(|s| s.active).count();
        assert!(active < 4, "at least one server must sleep");
        // All apps still hosted somewhere.
        let hosted: usize = w.servers().iter().map(|s| s.apps.len()).sum();
        assert_eq!(hosted, n_apps);
    }

    #[test]
    fn sleeping_servers_draw_no_power() {
        let (tree, specs, n_apps) = small_setup(1);
        let mut w = Willow::new(tree, specs, ControllerConfig::default()).unwrap();
        let d = demands(n_apps, 10.0);
        let mut last = None;
        for _ in 0..20 {
            last = Some(w.step(&d, Watts(10_000.0)));
        }
        let r = last.unwrap();
        for (i, active) in r.server_active.iter().enumerate() {
            if !active {
                assert_eq!(r.server_power[i], Watts(0.0));
            }
        }
    }

    #[test]
    fn wake_on_deficit_restores_capacity() {
        let (tree, specs, n_apps) = small_setup(1);
        let mut cfg = ControllerConfig::default();
        cfg.consolidation_threshold = 0.2;
        cfg.wake_on_deficit = true;
        let mut w = Willow::new(tree, specs, cfg).unwrap();
        // Phase 1: idle ⇒ consolidation puts servers to sleep.
        let low = demands(n_apps, 15.0);
        for _ in 0..15 {
            let _ = w.step(&low, Watts(10_000.0));
        }
        let active_before = w.servers().iter().filter(|s| s.active).count();
        assert!(active_before < 4);
        // Phase 2: demand surges beyond what awake servers can host.
        let high = demands(n_apps, 400.0);
        let mut woke = false;
        for _ in 0..20 {
            let r = w.step(&high, Watts(10_000.0));
            woke |= !r.woken.is_empty();
        }
        assert!(woke, "dropped demand must wake sleeping servers");
        let active_after = w.servers().iter().filter(|s| s.active).count();
        assert!(active_after > active_before);
    }

    #[test]
    fn thermal_cap_limits_hot_server_and_workload_flees_hot_zone() {
        // Server 0 sits in a hot zone: once it heats up, its thermal cap —
        // and hence its budget — must fall well below its rating, its
        // temperature must never cross the limit, and Willow must migrate
        // its workload toward the cool zone (the Fig. 5/7 behaviour).
        let (tree, mut specs, n_apps) = small_setup(1);
        specs[0].ambient = Celsius(45.0);
        let mut w = Willow::new(tree, specs, ControllerConfig::default()).unwrap();
        let mut d = demands(n_apps, 10.0);
        d[0] = Watts(400.0);
        let mut min_loaded_budget = f64::INFINITY;
        for _ in 0..50 {
            let r = w.step(&d, Watts(10_000.0));
            assert!(
                r.server_temp[0] <= Celsius(70.0 + 1e-6),
                "thermal limit violated: {}",
                r.server_temp[0]
            );
            if r.server_active[0] && r.server_power[0].0 > 100.0 {
                min_loaded_budget = min_loaded_budget.min(r.server_budget[0].0);
            }
        }
        assert!(
            min_loaded_budget < 450.0 * 0.8,
            "hot loaded server budget {min_loaded_budget} should fall well below rating"
        );
        // The heavy app must have left the hot zone.
        let host = w.locate_app(AppId(0)).expect("app still hosted");
        assert_ne!(host, 0, "workload must migrate out of the hot zone");
    }

    #[test]
    fn thermal_limit_never_violated() {
        let (tree, mut specs, n_apps) = small_setup(2);
        for s in &mut specs[2..] {
            s.ambient = Celsius(40.0);
        }
        let mut w = Willow::new(tree, specs, ControllerConfig::default()).unwrap();
        let d = demands(n_apps, 120.0);
        for _ in 0..100 {
            let r = w.step(&d, Watts(1_200.0));
            for (i, t) in r.server_temp.iter().enumerate() {
                assert!(t.0 <= 70.0 + 1e-6, "server {i} exceeded thermal limit: {t}");
            }
        }
    }

    #[test]
    fn property3_message_bound() {
        let (tree, specs, n_apps) = small_setup(1);
        let links = tree.len() - 1;
        let mut w = Willow::new(tree, specs, ControllerConfig::default()).unwrap();
        for _ in 0..10 {
            let r = w.step(&demands(n_apps, 10.0), Watts(10_000.0));
            assert!(
                r.control_messages <= 2 * links,
                "Property 3: ≤ 2 messages per link per Δ_D"
            );
        }
    }

    #[test]
    fn no_pingpong_under_stable_demand() {
        let (tree, specs, n_apps) = small_setup(2);
        let mut w = Willow::new(tree, specs, ControllerConfig::default()).unwrap();
        let mut d = demands(n_apps, 30.0);
        d[0] = Watts(80.0);
        d[1] = Watts(80.0);
        let mut total_pingpongs = 0;
        for _ in 0..60 {
            let r = w.step(&d, Watts(500.0));
            total_pingpongs += r.pingpongs();
        }
        assert_eq!(total_pingpongs, 0, "stable demand must not ping-pong");
    }

    #[test]
    fn apps_conserved_across_arbitrary_churn() {
        let (tree, specs, n_apps) = small_setup(3);
        let mut w = Willow::new(tree, specs, ControllerConfig::default()).unwrap();
        // Deterministic wavy demand + supply.
        for t in 0..120u64 {
            let d: Vec<Watts> = (0..n_apps)
                .map(|i| Watts(20.0 + 15.0 * (((t as usize + i) % 7) as f64)))
                .collect();
            let supply = Watts(600.0 + 300.0 * ((t % 11) as f64 / 10.0));
            let _ = w.step(&d, supply);
            let hosted: usize = w.servers().iter().map(|s| s.apps.len()).sum();
            assert_eq!(hosted, n_apps, "apps must never be lost or duplicated");
            // Demand alignment invariant.
            for s in w.servers() {
                assert_eq!(s.apps.len(), s.app_demand.len());
            }
        }
    }

    #[test]
    fn strict_reduced_rule_blocks_targets_on_global_dip() {
        // Identical scenario to `supply_plunge_triggers_migration_under_
        // equal_share`, but under the literal reading of the §IV-E rule a
        // global dip reduces every budget, so no target is eligible and no
        // migration may happen — the inconsistency DESIGN.md documents.
        let (tree, specs, n_apps) = small_setup(2);
        let mut cfg = ControllerConfig::default();
        cfg.reduced_rule = ReducedTargetRule::Strict;
        cfg.eta1 = 1;
        cfg.eta2 = 2;
        cfg.consolidation_threshold = 0.0;
        cfg.allocation = AllocationPolicy::EqualShare;
        let mut w = Willow::new(tree, specs, cfg).unwrap();
        let mut d = demands(n_apps, 10.0);
        d[0] = Watts(60.0);
        d[1] = Watts(60.0);
        let _ = w.step(&d, Watts(800.0));
        let r = w.step(&d, Watts(400.0));
        assert_eq!(
            r.migrations_by_reason(MigrationReason::Demand),
            0,
            "strict rule forbids all targets after a global reduction"
        );
    }

    #[test]
    fn shedding_respects_priorities_end_to_end() {
        use willow_workload::app::Priority;
        // One server pod, two apps per server: app even = Low, odd = High.
        let tree = Tree::uniform(&[2, 2]);
        let mut id = 0u32;
        let specs: Vec<ServerSpec> = tree
            .leaves()
            .map(|leaf| {
                let apps: Vec<_> = (0..2)
                    .map(|_| {
                        let prio = if id.is_multiple_of(2) {
                            Priority::Low
                        } else {
                            Priority::High
                        };
                        let a =
                            Application::new(AppId(id), 0, &SIM_APP_CLASSES[0]).with_priority(prio);
                        id += 1;
                        a
                    })
                    .collect();
                ServerSpec::simulation_default(leaf).with_apps(apps)
            })
            .collect();
        let mut cfg = ControllerConfig::default();
        cfg.wake_on_deficit = false;
        cfg.consolidation_threshold = 0.0;
        let mut w = Willow::new(tree, specs, cfg).unwrap();
        // Demand far above supply: shedding is unavoidable everywhere.
        let d = demands(id as usize, 150.0);
        let mut low = 0.0;
        let mut high = 0.0;
        for _ in 0..10 {
            let r = w.step(&d, Watts(800.0));
            low += r.shed_by_priority[Priority::Low.index()].0;
            high += r.shed_by_priority[Priority::High.index()].0;
        }
        assert!(low > 0.0, "undersupply must shed low-priority demand");
        assert!(
            high < low,
            "high-priority demand ({high}) must shed less than low ({low})"
        );
    }

    #[test]
    fn naive_throttle_ablation_overshoots_where_willow_does_not() {
        use crate::config::ThermalEstimate;
        // Hot-zone server driven hard: the naive reactive throttle lets the
        // temperature cross the limit between supply ticks; Willow's
        // window-prediction cap (tested elsewhere) never does.
        let (tree, mut specs, n_apps) = small_setup(1);
        for s in &mut specs {
            s.ambient = Celsius(45.0);
        }
        let mut cfg = ControllerConfig::default();
        cfg.thermal_estimate = ThermalEstimate::NaiveThrottle;
        cfg.consolidation_threshold = 0.0;
        let mut w = Willow::new(tree, specs, cfg).unwrap();
        let d = demands(n_apps, 400.0);
        let mut max_temp = f64::MIN;
        for _ in 0..100 {
            let r = w.step(&d, Watts(10_000.0));
            max_temp = max_temp.max(r.server_temp.iter().map(|t| t.0).fold(f64::MIN, f64::max));
        }
        assert!(
            max_temp > 70.0,
            "naive throttling should overshoot the limit, peaked at {max_temp}"
        );
    }

    #[test]
    fn locate_app_finds_hosts() {
        let (tree, specs, _) = small_setup(1);
        let w = Willow::new(tree, specs, ControllerConfig::default()).unwrap();
        assert_eq!(w.locate_app(AppId(0)), Some(0));
        assert_eq!(w.locate_app(AppId(3)), Some(3));
        assert_eq!(w.locate_app(AppId(99)), None);
    }

    // ------------------------------------------------------------------
    // Fault-injection defenses
    // ------------------------------------------------------------------

    use crate::disturbance::{Disturbances, MigrationOutcome};

    /// Zero-valued (but fully allocated) disturbance vectors must behave
    /// exactly like the empty default — tick-for-tick.
    #[test]
    fn explicit_zero_disturbances_match_fault_free_run() {
        let (tree, specs, n_apps) = small_setup(2);
        let mut a = Willow::new(tree.clone(), specs.clone(), ControllerConfig::default()).unwrap();
        let mut b = Willow::new(tree, specs, ControllerConfig::default()).unwrap();
        let zero = Disturbances {
            crashed: vec![false; 4],
            report_lost: vec![false; 4],
            directive_lost: vec![false; 4],
            sensor_override: vec![None; 4],
            sensor_offset: vec![0.0; 4],
            migration_outcomes: vec![MigrationOutcome::Success; 8],
        };
        for t in 0..60u64 {
            let d: Vec<Watts> = (0..n_apps)
                .map(|i| Watts(20.0 + 15.0 * (((t as usize + i) % 7) as f64)))
                .collect();
            let supply = Watts(300.0 + 200.0 * ((t % 9) as f64 / 8.0));
            let ra = a.step(&d, supply);
            let rb = b.step_with(&d, supply, &zero);
            assert_eq!(ra, rb, "tick {t} diverged under zero disturbances");
        }
    }

    /// A leaf that keeps missing its directive must never see its budget
    /// loosen, and after `watchdog_threshold` misses it must fall back to
    /// the conservative cap. A fresh directive releases the fallback.
    #[test]
    fn stale_directive_watchdog_tightens_only_then_recovers() {
        let (tree, specs, n_apps) = small_setup(1);
        let mut cfg = ControllerConfig::default();
        cfg.eta1 = 1; // every tick is a supply tick
        cfg.consolidation_threshold = 0.0;
        let threshold = cfg.robustness.watchdog_threshold;
        let frac = cfg.robustness.watchdog_cap_fraction;
        let mut w = Willow::new(tree, specs, cfg).unwrap();
        let d = demands(n_apps, 50.0);
        // Settle fault-free first.
        let mut last_budget = Watts::ZERO;
        for _ in 0..5 {
            last_budget = w.step(&d, Watts(10_000.0)).server_budget[0];
        }
        let lost = Disturbances {
            directive_lost: vec![true, false, false, false],
            ..Disturbances::default()
        };
        let rating = w.servers()[0].thermal.rating();
        let mut tripped_at = None;
        for k in 1..=(threshold + 2) {
            let r = w.step_with(&d, Watts(10_000.0), &lost);
            assert_eq!(r.directives_lost, 1);
            assert!(
                r.server_budget[0] <= last_budget + Watts(1e-9),
                "budget loosened without a fresh directive at miss {k}"
            );
            last_budget = r.server_budget[0];
            if r.watchdog_trips > 0 {
                assert_eq!(tripped_at, None, "watchdog must trip exactly once");
                tripped_at = Some(k);
            }
            if k >= threshold {
                assert_eq!(r.fallback_servers, 1);
                assert!(
                    r.server_budget[0] <= Watts(rating.0 * frac + 1e-9),
                    "fallback cap not applied at miss {k}"
                );
            }
        }
        assert_eq!(tripped_at, Some(threshold));
        // A fresh directive resets the watchdog and may loosen again.
        let r = w.step(&d, Watts(10_000.0));
        assert_eq!(r.fallback_servers, 0);
        assert!(r.server_budget[0] >= last_budget);
    }

    /// An aborted migration leaves the app at the source but charges the
    /// copy cost to both end nodes and the traffic to the fabric.
    #[test]
    fn aborted_migration_restores_source_and_charges_both_ends() {
        let (tree, specs, n_apps) = small_setup(2);
        let mut cfg = ControllerConfig::default();
        cfg.margin = Watts(5.0);
        cfg.eta1 = 1;
        cfg.eta2 = 1000;
        cfg.consolidation_threshold = 0.0;
        cfg.allocation = AllocationPolicy::EqualShare;
        let mut w = Willow::new(tree, specs, cfg).unwrap();
        let mut d = demands(n_apps, 10.0);
        d[0] = Watts(60.0);
        d[1] = Watts(60.0);
        let _ = w.step(&d, Watts(800.0));
        let abort = Disturbances {
            migration_outcomes: vec![MigrationOutcome::Abort; 8],
            ..Disturbances::default()
        };
        let all_nodes: Vec<NodeId> = w.tree().ids().collect();
        let r = w.step_with(&d, Watts(400.0), &abort);
        assert!(r.migration_aborts > 0, "plunge must provoke an attempt");
        assert!(r.migrations.is_empty(), "aborted moves must not complete");
        // Both apps still on server 0; conservation holds.
        let hosted: usize = w.servers().iter().map(|s| s.apps.len()).sum();
        assert_eq!(hosted, n_apps);
        assert_eq!(w.servers()[0].apps.len(), 2);
        // The copy work was real: both ends carry the temporary cost and
        // the fabric carried the traffic despite zero completed moves.
        let charged = w
            .servers()
            .iter()
            .filter(|s| s.pending_cost.0 > 0.0)
            .count();
        assert!(charged >= 2, "both end nodes must be charged");
        let carried = w
            .fabric()
            .sum_traffic(&all_nodes, willow_network::TrafficKind::Migration);
        assert!(carried > 0.0, "the fabric must have carried the copy");
    }

    /// After a rejected attempt the app backs off; once the backoff
    /// expires a clean retry succeeds and is counted.
    #[test]
    fn rejected_migration_retries_after_backoff() {
        let (tree, specs, n_apps) = small_setup(2);
        let mut cfg = ControllerConfig::default();
        cfg.margin = Watts(5.0);
        cfg.eta1 = 1;
        cfg.eta2 = 1000;
        cfg.consolidation_threshold = 0.0;
        cfg.allocation = AllocationPolicy::EqualShare;
        let mut w = Willow::new(tree, specs, cfg).unwrap();
        let mut d = demands(n_apps, 10.0);
        d[0] = Watts(60.0);
        d[1] = Watts(60.0);
        let _ = w.step(&d, Watts(800.0));
        let reject = Disturbances {
            migration_outcomes: vec![MigrationOutcome::Reject; 8],
            ..Disturbances::default()
        };
        let r = w.step_with(&d, Watts(400.0), &reject);
        assert!(r.migration_rejects > 0);
        assert!(r.migrations.is_empty());
        // Fault-free from now on: the retry must eventually land.
        let mut retried = 0;
        for _ in 0..10 {
            let r = w.step(&d, Watts(400.0));
            retried += r.migration_retries;
        }
        assert!(retried > 0, "backoff must end in a successful retry");
    }

    /// A duplicated commit message must be a no-op at the controller
    /// level: the app is not moved twice, no second record is emitted and
    /// the stats stay put — conservation survives message duplication.
    #[test]
    fn duplicate_commit_does_not_double_move() {
        let (tree, specs, n_apps) = small_setup(2);
        let mut cfg = ControllerConfig::default();
        cfg.margin = Watts(5.0);
        cfg.eta1 = 1;
        cfg.eta2 = 1000;
        cfg.consolidation_threshold = 0.0;
        cfg.allocation = AllocationPolicy::EqualShare;
        let mut w = Willow::new(tree, specs, cfg).unwrap();
        let mut d = demands(n_apps, 10.0);
        d[0] = Watts(60.0);
        d[1] = Watts(60.0);
        let _ = w.step(&d, Watts(800.0));
        let r = w.step(&d, Watts(400.0));
        assert_eq!(r.migrations.len(), 1, "the plunge must trigger one move");
        let moved = r.migrations[0].app;
        let committed = w
            .journal()
            .entry(crate::txn::TxnId(0))
            .copied()
            .expect("the transaction is still journaled");
        assert_eq!(committed.phase, crate::txn::TxnPhase::Committed);
        assert_eq!(committed.app, moved);
        let host = w.locate_app(moved).unwrap();
        let stats = w.stats();

        // Replay the commit, as a duplicated message would.
        let mut records = Vec::new();
        assert!(
            !w.commit_migration(committed.id, &mut records),
            "replayed commit must report it did nothing"
        );
        assert!(records.is_empty());
        assert_eq!(w.locate_app(moved), Some(host), "app must not move again");
        assert_eq!(w.stats(), stats);
        let hosted: usize = w.servers().iter().map(|s| s.apps.len()).sum();
        assert_eq!(hosted, n_apps, "no app may be duplicated or lost");
    }

    /// Pins the failure-accounting semantics documented on [`TickReport`]:
    /// every attempt outcome is counted exactly once, in the period it
    /// happens — a reject is only a reject, an abort is only an abort, and
    /// the eventual successful retry counts as one retry plus one
    /// migration without re-counting (or retroactively un-counting) the
    /// earlier failures.
    #[test]
    fn failure_accounting_counts_each_outcome_once() {
        let (tree, specs, n_apps) = small_setup(2);
        let mut cfg = ControllerConfig::default();
        cfg.margin = Watts(5.0);
        cfg.eta1 = 1;
        cfg.eta2 = 1000;
        cfg.consolidation_threshold = 0.0;
        cfg.allocation = AllocationPolicy::EqualShare;
        let mut w = Willow::new(tree, specs, cfg).unwrap();
        let mut d = demands(n_apps, 10.0);
        d[0] = Watts(60.0);
        d[1] = Watts(60.0);
        let _ = w.step(&d, Watts(800.0));
        let reject = Disturbances {
            migration_outcomes: vec![MigrationOutcome::Reject; 8],
            ..Disturbances::default()
        };
        let abort = Disturbances {
            migration_outcomes: vec![MigrationOutcome::Abort; 8],
            ..Disturbances::default()
        };

        // Attempt 1: admission rejected — one reject, nothing else.
        let r = w.step_with(&d, Watts(400.0), &reject);
        assert_eq!(
            (r.migration_rejects, r.migration_aborts, r.migration_retries),
            (1, 0, 0)
        );
        assert!(r.migrations.is_empty());

        // Attempt 2 (the one-tick backoff has expired): aborted mid-flight
        // — one abort, and the earlier reject is not re-counted.
        let r = w.step_with(&d, Watts(400.0), &abort);
        assert_eq!(
            (r.migration_rejects, r.migration_aborts, r.migration_retries),
            (0, 1, 0)
        );
        assert!(r.migrations.is_empty());

        // Fault-free from here: the eventual success is one retry and one
        // migration, never an additional failure of either kind.
        let (mut rejects, mut aborts, mut retries, mut moves) = (0, 0, 0, 0);
        for _ in 0..10 {
            let r = w.step(&d, Watts(400.0));
            rejects += r.migration_rejects;
            aborts += r.migration_aborts;
            retries += r.migration_retries;
            moves += r.migrations.len();
        }
        assert_eq!(retries, 1, "exactly one successful retry");
        assert_eq!(moves, 1, "the app migrates exactly once");
        assert_eq!(
            (rejects, aborts),
            (0, 0),
            "a landed retry must not re-count as a failure"
        );
        assert_eq!(w.stats().migrations, 1);
    }

    /// A stuck-high sensor must be rejected by the plausibility filter:
    /// the healthy server keeps a healthy budget and keeps its workload.
    #[test]
    fn stuck_high_sensor_does_not_evacuate_healthy_server() {
        let (tree, specs, n_apps) = small_setup(1);
        let mut cfg = ControllerConfig::default();
        cfg.eta1 = 1;
        cfg.consolidation_threshold = 0.0;
        let mut w = Willow::new(tree, specs, cfg).unwrap();
        let d = demands(n_apps, 50.0);
        for _ in 0..5 {
            let _ = w.step(&d, Watts(10_000.0));
        }
        let stuck = Disturbances {
            sensor_override: vec![Some(Celsius(95.0))],
            ..Disturbances::default()
        };
        for _ in 0..30 {
            let r = w.step_with(&d, Watts(10_000.0), &stuck);
            assert!(r.sensor_rejections >= 1, "95 °C reading must be rejected");
            assert!(
                r.server_budget[0] >= Watts(50.0),
                "healthy server must keep a working budget, got {}",
                r.server_budget[0]
            );
        }
        assert_eq!(
            w.locate_app(AppId(0)),
            Some(0),
            "workload must not flee a healthy server on a stuck sensor"
        );
    }

    /// A stuck-low sensor must not let a hot server overheat: caps keep
    /// following the model prediction, not the flattering reading.
    #[test]
    fn stuck_low_sensor_does_not_cause_thermal_violation() {
        let (tree, mut specs, n_apps) = small_setup(1);
        specs[0].ambient = Celsius(45.0);
        let mut w = Willow::new(tree, specs, ControllerConfig::default()).unwrap();
        let mut d = demands(n_apps, 10.0);
        d[0] = Watts(400.0);
        let stuck = Disturbances {
            sensor_override: vec![Some(Celsius(25.0))],
            ..Disturbances::default()
        };
        for _ in 0..60 {
            let r = w.step_with(&d, Watts(10_000.0), &stuck);
            assert!(
                r.server_temp[0] <= Celsius(70.0 + 1e-6),
                "stuck-low sensor let the server overheat: {}",
                r.server_temp[0]
            );
        }
    }

    /// Crashed servers are not eligible migration targets.
    #[test]
    fn crashed_server_not_a_migration_target() {
        let (tree, specs, n_apps) = small_setup(2);
        let mut cfg = ControllerConfig::default();
        cfg.margin = Watts(5.0);
        cfg.eta1 = 1;
        cfg.eta2 = 1000;
        cfg.consolidation_threshold = 0.0;
        cfg.allocation = AllocationPolicy::EqualShare;
        let mut w = Willow::new(tree, specs, cfg).unwrap();
        let mut d = demands(n_apps, 10.0);
        d[0] = Watts(60.0);
        d[1] = Watts(60.0);
        let _ = w.step(&d, Watts(800.0));
        // Server 1 (the sibling that would normally absorb the load) is
        // crashed; any migration must land elsewhere.
        let crash = Disturbances {
            crashed: vec![false, true, false, false],
            ..Disturbances::default()
        };
        let r = w.step_with(&d, Watts(400.0), &crash);
        let crashed_leaf = w.servers()[1].node;
        assert!(
            r.migrations.iter().all(|m| m.to != crashed_leaf),
            "no migration may target a crashed server: {:?}",
            r.migrations
        );
    }

    // ------------------------------------------------------------------
    // Controller crash: open-loop operation and checkpoint recovery
    // ------------------------------------------------------------------

    fn placement(w: &Willow) -> Vec<Vec<AppId>> {
        w.servers()
            .iter()
            .map(|s| s.apps.iter().map(|a| a.id).collect())
            .collect()
    }

    #[test]
    fn open_loop_freezes_placement_and_trips_watchdogs() {
        let (tree, specs, n_apps) = small_setup(2);
        let mut cfg = ControllerConfig::default();
        cfg.eta1 = 1; // every tick issues directives ⇒ every open-loop tick misses one
        cfg.eta2 = 1000;
        let mut w = Willow::new(tree, specs, cfg).unwrap();
        let d = demands(n_apps, 30.0);
        for _ in 0..5 {
            w.step(&d, Watts(2000.0));
        }
        let before = placement(&w);
        let budgets: Vec<Watts> = w
            .servers()
            .iter()
            .map(|s| w.power().tp[s.node.index()])
            .collect();
        let threshold = w.config().robustness.watchdog_threshold;
        let frac = w.config().robustness.watchdog_cap_fraction;
        let mut r = TickReport::default();
        for k in 1..=6u32 {
            w.step_open_loop(&d, &Disturbances::default(), &mut r);
            assert!(r.migrations.is_empty(), "open loop can never migrate");
            assert_eq!(r.control_messages, 0, "a dead controller sends nothing");
            assert_eq!(r.directives_lost, 4, "every leaf misses its directive");
            for (s, &b0) in w.servers().iter().zip(&budgets) {
                assert!(
                    w.power().tp[s.node.index()] <= b0 + Watts(1e-9),
                    "open-loop budgets may only tighten"
                );
            }
            if k >= threshold {
                assert!(
                    w.watchdogs().iter().all(|wd| wd.tripped),
                    "all watchdogs tripped after {threshold} missed directives"
                );
                assert_eq!(r.fallback_servers, 4);
                for s in w.servers() {
                    assert!(
                        w.power().tp[s.node.index()].0 <= s.thermal.rating().0 * frac + 1e-9,
                        "tripped fallback cap must bind"
                    );
                }
            }
        }
        assert_eq!(placement(&w), before, "placement is frozen while down");
    }

    #[test]
    fn recover_adopts_field_state_and_resolves_in_flight() {
        let (tree, specs, n_apps) = small_setup(2);
        let mut cfg = ControllerConfig::default();
        cfg.margin = Watts(5.0);
        cfg.eta1 = 1;
        cfg.eta2 = 1000;
        cfg.consolidation_threshold = 0.0;
        cfg.allocation = AllocationPolicy::EqualShare;
        let mut w = Willow::new(tree, specs, cfg).unwrap();
        let mut d = demands(n_apps, 10.0);
        d[0] = Watts(60.0);
        d[1] = Watts(60.0);
        let _ = w.step(&d, Watts(800.0));
        // Checkpoint *before* the plunge migrates an app away.
        let mut ckpt = w.snapshot();
        // Forge an in-flight entry in the checkpoint, as if the controller
        // crashed mid-transfer right after checkpointing.
        let stale = ckpt.journal.begin(
            AppId(0),
            w.servers()[0].node,
            w.servers()[1].node,
            Watts(60.0),
            MigrationReason::Demand,
            1,
        );
        ckpt.journal.mark_transferred(stale);
        // The field keeps going: a migration commits post-checkpoint...
        let r = w.step(&d, Watts(400.0));
        assert!(!r.migrations.is_empty(), "setup needs a real migration");
        // ...then the controller dies and the leaves run open-loop.
        let mut report = TickReport::default();
        for _ in 0..10 {
            w.step_open_loop(&d, &Disturbances::default(), &mut report);
        }

        let recovered = Willow::recover(ckpt, &w).unwrap();
        assert_eq!(recovered.tick_count(), w.tick_count(), "clock from field");
        assert_eq!(
            placement(&recovered),
            placement(&w),
            "post-checkpoint migrations must survive recovery (field wins)"
        );
        assert_eq!(recovered.watchdogs(), w.watchdogs());
        assert_eq!(recovered.accepted_temps(), w.accepted_temps());
        assert_eq!(
            recovered.journal().in_flight().count(),
            0,
            "entries left open across the crash are aborted"
        );
        // The recovered controller must be able to keep controlling.
        let mut r2 = recovered;
        let apps_before: usize = r2.servers().iter().map(|s| s.apps.len()).sum();
        let mut rep = TickReport::default();
        for _ in 0..20 {
            r2.step_into(&d, Watts(800.0), &Disturbances::default(), &mut rep);
        }
        let apps_after: usize = r2.servers().iter().map(|s| s.apps.len()).sum();
        assert_eq!(apps_before, apps_after, "apps conserved after recovery");
    }

    #[test]
    fn recover_from_fresh_checkpoint_continues_identically() {
        // When the field has not diverged from the checkpoint (crash of
        // zero length), recovery must be behaviorally invisible: the
        // recovered controller and the uninterrupted one produce identical
        // reports from then on.
        let (tree, specs, n_apps) = small_setup(2);
        let mut cfg = ControllerConfig::default();
        cfg.margin = Watts(5.0);
        cfg.eta1 = 2;
        cfg.eta2 = 7;
        cfg.allocation = AllocationPolicy::EqualShare;
        let mut w = Willow::new(tree, specs, cfg).unwrap();
        let mut d = demands(n_apps, 25.0);
        d[0] = Watts(70.0);
        for t in 0..20 {
            let supply = if t % 6 < 3 { 900.0 } else { 380.0 };
            let _ = w.step(&d, Watts(supply));
        }
        let ckpt = w.snapshot();
        let mut recovered = Willow::recover(ckpt, &w).unwrap();
        let mut ra = TickReport::default();
        let mut rb = TickReport::default();
        for t in 20..60 {
            let supply = if t % 6 < 3 { 900.0 } else { 380.0 };
            w.step_into(&d, Watts(supply), &Disturbances::default(), &mut ra);
            recovered.step_into(&d, Watts(supply), &Disturbances::default(), &mut rb);
            assert_eq!(format!("{ra:?}"), format!("{rb:?}"), "diverged at tick {t}");
        }
    }

    #[test]
    fn recover_rejects_mismatched_field() {
        let (tree, specs, _) = small_setup(1);
        let w = Willow::new(tree, specs, ControllerConfig::default()).unwrap();
        let ckpt = w.snapshot();
        let other_tree = Tree::paper_fig3();
        let other_specs: Vec<ServerSpec> = other_tree
            .leaves()
            .enumerate()
            .map(|(i, leaf)| {
                let app = Application::new(
                    AppId(i as u32),
                    0,
                    &willow_workload::app::SIM_APP_CLASSES[0],
                );
                ServerSpec::simulation_default(leaf).with_apps(vec![app])
            })
            .collect();
        let other = Willow::new(other_tree, other_specs, ControllerConfig::default()).unwrap();
        assert!(matches!(
            Willow::recover(ckpt, &other),
            Err(WillowError::SnapshotShape { .. })
        ));
    }

    /// The auditor's violation arms need a corrupted controller, and only
    /// this module can reach the private state to corrupt it — so the
    /// positive (violation-firing) auditor tests live here, while the
    /// clean-run tests live in `crate::audit`.
    mod audit_detection {
        use super::*;
        use crate::audit::{Auditor, InvariantViolation};

        /// Settled 4-server fixture. The tick-0 consolidation packs the
        /// lightly loaded fleet onto servers 1 and 3 (four apps each) and
        /// puts 0 and 2 to sleep; `eta2 = 1000` keeps that placement
        /// frozen afterwards.
        fn settled() -> Willow {
            let (tree, specs, n_apps) = small_setup(2);
            let config = ControllerConfig {
                eta2: 1000,
                ..ControllerConfig::default()
            };
            let mut w = Willow::new(tree, specs, config).unwrap();
            for _ in 0..8 {
                let _ = w.step(&demands(n_apps, 30.0), Watts(2000.0));
            }
            assert_eq!(w.servers[1].apps.len(), 4);
            assert_eq!(w.servers[3].apps.len(), 4);
            w
        }

        fn has(
            violations: &[InvariantViolation],
            pred: impl Fn(&InvariantViolation) -> bool,
        ) -> bool {
            violations.iter().any(pred)
        }

        #[test]
        fn clean_controller_audits_clean() {
            let w = settled();
            let mut a = Auditor::new(&w);
            assert!(a.check(&w).is_empty());
            assert_eq!(a.total_violations(), 0);
        }

        #[test]
        fn detects_lost_and_duplicated_apps() {
            let mut w = settled();
            let mut a = Auditor::new(&w);
            // Clone server 1's first app onto server 3: one duplicate.
            let app = w.servers[1].apps[0].clone();
            let dup = app.id;
            w.servers[3].apps.push(app);
            assert!(has(a.check(&w), |v| matches!(
                v,
                InvariantViolation::AppDuplicated { app, copies: 2 } if *app == dup
            )));
            // Remove both copies: the app is now lost.
            w.servers[3].apps.pop();
            let lost = w.servers[1].apps.remove(0).id;
            assert!(has(a.check(&w), |v| matches!(
                v,
                InvariantViolation::AppLost { app } if *app == lost
            )));
            assert_eq!(a.total_violations(), 2);
        }

        #[test]
        fn detects_unknown_app_and_populated_sleeper() {
            let mut w = settled();
            let mut a = Auditor::new(&w);
            w.servers[1]
                .apps
                .push(Application::new(AppId(999), 0, &SIM_APP_CLASSES[0]));
            assert!(has(a.check(&w), |v| matches!(
                v,
                InvariantViolation::AppUnknown {
                    app: AppId(999),
                    server: 1
                }
            )));
            w.servers[1].apps.pop();
            w.servers[3].active = false;
            assert!(has(a.check(&w), |v| matches!(
                v,
                InvariantViolation::SleepingServerHostsApps { server: 3, apps: 4 }
            )));
        }

        #[test]
        fn detects_budget_overflow_and_stale_loosening() {
            let mut w = settled();
            let mut a = Auditor::new(&w);
            // Grant a leaf more than its parent has: hierarchy overflow.
            let leaf = w.servers[1].node.index();
            let parent = w.tree.parent(w.servers[1].node).unwrap();
            let before = w.power.tp[leaf];
            w.power.tp[leaf] = w.power.tp[parent.index()] + Watts(50.0);
            assert!(has(a.check(&w), |v| matches!(
                v,
                InvariantViolation::BudgetOverflow { node, .. } if *node == parent
            )));
            w.power.tp[leaf] = before;
            // A stale leaf must only tighten: mark it stale across two
            // audits and loosen its budget in between.
            w.watchdog[1].missed = 2;
            assert!(a.check(&w).is_empty());
            w.watchdog[1].missed = 3;
            w.power.tp[leaf] = before + Watts(10.0);
            let violations = a.check(&w);
            assert!(has(violations, |v| matches!(
                v,
                InvariantViolation::LoosenedWhileStale { server: 1, .. }
            )));
            // The stale leaf is excluded from the hierarchy sum, so the
            // loosening does not double-report as an overflow.
            assert!(!has(violations, |v| matches!(
                v,
                InvariantViolation::BudgetOverflow { .. }
            )));
        }

        #[test]
        fn detects_nan_and_negative_watts() {
            let mut w = settled();
            let mut a = Auditor::new(&w);
            let leaf = w.servers[3].node.index();
            w.power.cp[leaf] = Watts(f64::NAN);
            assert!(has(a.check(&w), |v| matches!(
                v,
                InvariantViolation::NonFinite { what: "cp", .. }
            )));
            w.power.cp[leaf] = Watts(-1.0);
            assert!(has(a.check(&w), |v| matches!(
                v,
                InvariantViolation::NegativeWatts { what: "cp", .. }
            )));
            w.power.cp[leaf] = Watts(1.0);
            w.accepted_temp[0] = willow_thermal::units::Celsius(f64::INFINITY);
            assert!(has(a.check(&w), |v| matches!(
                v,
                InvariantViolation::NonFinite {
                    what: "accepted_temp",
                    ..
                }
            )));
        }

        #[test]
        #[should_panic(expected = "invariant violations at tick")]
        fn panic_mode_panics_on_violation() {
            let mut w = settled();
            let mut a = Auditor::new(&w).panic_on_violation(true);
            w.servers[1].apps.clear();
            w.servers[1].app_demand.clear();
            let _ = a.check(&w);
        }
    }
}
