//! δ-convergence analysis (paper §V-A1).
//!
//! Willow's updates propagate one way per kind — demand reports leaf→root,
//! budget directives root→leaf — so an update made at time `t` is visible
//! everywhere by `t + δ` with `δ ≤ h·α`, where `h` is the number of levels
//! and `α` the per-level update-processing latency. The paper argues that
//! choosing `Δ_D ≥ 10·h·α` "would avoid instabilities in decision making",
//! and that with `h ≤ 5` and `α` of a few tens of milliseconds, `δ ≤ 50 ms`
//! and any `Δ_D > 500 ms` is safe.
//!
//! This module computes those quantities for a concrete topology so
//! deployments can validate their control periods, and the simulator's
//! tests check the arithmetic against the paper's worked example.

use serde::{Deserialize, Serialize};
use willow_thermal::units::Seconds;
use willow_topology::Tree;

/// The §V-A1 convergence analysis for one topology and per-level latency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceAnalysis {
    /// Number of levels an update crosses (the tree height).
    pub levels: u8,
    /// Assumed per-level update propagation latency `α`.
    pub alpha: Seconds,
    /// The convergence bound `δ = h·α`: every site perceives an update
    /// within this time.
    pub delta: Seconds,
    /// The paper's safety margin: the smallest `Δ_D` that keeps decisions
    /// stable (`10·δ`).
    pub recommended_delta_d: Seconds,
}

impl ConvergenceAnalysis {
    /// Analyze a topology under a per-level latency `α`.
    ///
    /// # Panics
    /// Panics if `alpha` is not positive.
    #[must_use]
    pub fn for_tree(tree: &Tree, alpha: Seconds) -> Self {
        assert!(alpha.is_positive(), "per-level latency must be positive");
        let levels = tree.height();
        let delta = alpha * f64::from(levels);
        ConvergenceAnalysis {
            levels,
            alpha,
            delta,
            recommended_delta_d: delta * 10.0,
        }
    }

    /// True if a chosen demand period keeps the 10× stability margin.
    #[must_use]
    pub fn is_safe(&self, delta_d: Seconds) -> bool {
        delta_d >= self.recommended_delta_d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example() {
        // "Even in a very large data center, the number of levels in the
        // hierarchy is unlikely to be more than 4 or 5, and update at each
        // level can be done in a few tens of milliseconds. Therefore
        // δ ≤ 50 ms, and a Δ_D value exceeding 500 ms should be safe."
        let tree = willow_topology::Tree::uniform(&[2, 4, 4, 4, 4]); // 5 levels
        let analysis = ConvergenceAnalysis::for_tree(&tree, Seconds(0.010));
        assert_eq!(analysis.levels, 5);
        assert!((analysis.delta.0 - 0.050).abs() < 1e-12);
        assert!((analysis.recommended_delta_d.0 - 0.500).abs() < 1e-12);
        assert!(analysis.is_safe(Seconds(0.6)));
        assert!(!analysis.is_safe(Seconds(0.4)));
    }

    #[test]
    fn fig3_topology_analysis() {
        let tree = willow_topology::Tree::paper_fig3();
        let analysis = ConvergenceAnalysis::for_tree(&tree, Seconds(0.020));
        assert_eq!(analysis.levels, 3);
        assert!((analysis.delta.0 - 0.060).abs() < 1e-12);
        // The default 1 s Δ_D is comfortably safe.
        assert!(analysis.is_safe(crate::config::ControllerConfig::default().delta_d));
    }

    #[test]
    fn delta_grows_with_height() {
        let shallow =
            ConvergenceAnalysis::for_tree(&willow_topology::Tree::uniform(&[4]), Seconds(0.01));
        let deep = ConvergenceAnalysis::for_tree(
            &willow_topology::Tree::uniform(&[2, 2, 2, 2]),
            Seconds(0.01),
        );
        assert!(deep.delta > shallow.delta);
        assert!(deep.recommended_delta_d > shallow.recommended_delta_d);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_alpha_rejected() {
        let _ = ConvergenceAnalysis::for_tree(&willow_topology::Tree::paper_fig3(), Seconds(0.0));
    }
}
