//! # willow-core — the Willow control system
//!
//! Reproduction of the control scheme from *Kant, Murugan & Du, "Willow: A
//! Control System for Energy and Thermal Adaptive Computing", IPDPS 2011*.
//!
//! Willow adapts a data center's workload placement to a *varying* energy
//! and thermal profile: when parts of the hierarchy become energy-deficient
//! (supply dips, thermal caps tighten), virtual machines are migrated from
//! deficit zones to surplus zones; when servers idle below a threshold,
//! their workload is consolidated away so they can be put in deep sleep.
//!
//! ## Control structure (paper §IV)
//!
//! * **Hierarchical, unidirectional.** Budgets flow *down* the PMU tree
//!   (proportional to demand, clipped by hard thermal/circuit constraints);
//!   demand reports flow *up*; migrations are initiated only by the
//!   *tightening* of power constraints, never by their loosening.
//! * **Three time granularities.** Demand adaptation every `Δ_D`; supply
//!   (budget) adaptation every `Δ_S = η1·Δ_D`; consolidation decisions every
//!   `Δ_A = η2·Δ_D`, with `η2 > η1` (the paper uses η1 = 4, η2 = 7).
//! * **Local first.** Deficit demand is first packed into *sibling*
//!   surpluses (local migration); only what cannot be satisfied locally is
//!   passed up the hierarchy for non-local placement (one FFDLR bin-packing
//!   instance per PMU node, §IV-F). Demand that cannot be placed anywhere is
//!   shed (applications run degraded or shut down).
//! * **Stability margins.** A migration happens only if both the source and
//!   the target retain a surplus of at least `P_min` afterwards, with the
//!   migration cost charged as temporary demand to both ends — this is what
//!   prevents ping-pong control (paper Property 4).
//!
//! ## Crate layout
//!
//! * [`config`] — all tunables ([`config::ControllerConfig`]).
//! * [`server`] — per-server runtime state (hosted apps, thermal, smoother).
//! * [`state`] — per-node power state arrays (`CP`, `TP`, caps, reduction
//!   flags).
//! * [`migration`] — migration records, reasons, and per-tick reports.
//! * [`command`] — the live-ops command plane: typed operator commands
//!   (server add/remove, drain, policy hot-swap, pause/resume) processed
//!   at a fixed point in the tick.
//! * [`control`] — [`control::Willow`] itself: `step()` once per `Δ_D`
//!   with measured app demands and the current total supply, staged as a
//!   five-phase pipeline with pluggable policies (also reachable under
//!   its historical name, `controller`).
//!
//! ## Minimal use
//!
//! ```
//! use willow_core::config::ControllerConfig;
//! use willow_core::controller::Willow;
//! use willow_core::server::ServerSpec;
//! use willow_thermal::units::Watts;
//! use willow_topology::Tree;
//! use willow_workload::app::{AppId, Application, SIM_APP_CLASSES};
//!
//! let tree = Tree::paper_fig3();
//! // One small app on each of the 18 servers.
//! let specs: Vec<ServerSpec> = tree
//!     .leaves()
//!     .enumerate()
//!     .map(|(i, leaf)| {
//!         let app = Application::new(AppId(i as u32), 0, &SIM_APP_CLASSES[0]);
//!         ServerSpec::simulation_default(leaf).with_apps(vec![app])
//!     })
//!     .collect();
//! let mut willow = Willow::new(tree, specs, ControllerConfig::default()).unwrap();
//!
//! // Drive one control period: ample supply, 40 % utilization demands.
//! let demand: Vec<Watts> = (0..18).map(|_| Watts(10.0)).collect();
//! let report = willow.step(&demand, Watts(10_000.0));
//! assert_eq!(report.dropped_demand, Watts(0.0));
//! ```

#![warn(missing_docs)]
// Unsafe is denied crate-wide and allowed only in the audited shard-pool
// island (`control::shard` and the stage loops it shards): the persistent
// worker pool erases the job closure's borrow lifetime behind a barrier,
// and parallel stages hand disjoint index ranges of the same vectors to
// different workers. Every `unsafe` block carries its disjointness /
// lifetime argument inline.
#![deny(unsafe_code)]

pub mod audit;
pub mod baseline;
pub mod command;
pub mod config;
pub mod control;
pub use self::control as controller;
pub mod convergence;
#[cfg(test)]
mod differential;
pub mod disturbance;
pub mod federation;
pub mod migration;
#[cfg(test)]
#[allow(dead_code)]
pub(crate) mod reference;
pub mod server;
pub mod shedding;
pub mod snapshot;
pub mod state;
pub mod txn;

pub use audit::{Auditor, InvariantViolation};
pub use command::{
    Command, CommandError, CommandId, CommandOutcome, CommandStatus, PendingCommand,
};
pub use config::ControllerConfig;
pub use controller::{Backoff, Watchdog, Willow};
pub use disturbance::{Disturbances, MigrationOutcome};
pub use federation::{
    BrokerConfig, BrokerCounters, BrokerSnapshot, Federation, FederationError, FederationSnapshot,
    SupplyBroker, ZoneCondition, ZoneLink,
};
pub use migration::{MigrationReason, MigrationRecord, TickReport};
pub use server::ServerSpec;
