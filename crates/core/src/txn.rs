//! Transactional migrations: prepare → transfer → commit, with explicit
//! abort.
//!
//! A migration moves someone else's workload between machines, so its
//! failure modes matter more than its happy path. The controller runs
//! every migration through a small write-ahead journal:
//!
//! 1. **Prepare** — the attempt is validated and admitted; a journal
//!    entry opens in [`TxnPhase::Prepared`]. Nothing has been charged.
//! 2. **Transfer** — the copy work happens: both end nodes pay the
//!    temporary cost for one period and the fabric carries the traffic.
//!    The entry moves to [`TxnPhase::Transferred`]. The app still runs at
//!    the source.
//! 3. **Commit** — the placement flips atomically at the target. Commits
//!    are *idempotent*: committing an already-committed transaction (a
//!    duplicated commit message) is a no-op, so message duplication can
//!    never double-move or duplicate an application.
//!
//! **Abort** is legal from either open phase: the app stays at the
//! source, and whatever copy cost was already incurred stays charged (the
//! work was real). Because the placement only changes inside commit, a
//! crash or dead link at any earlier point leaves the application exactly
//! where it was — never orphaned, never duplicated. A restarted
//! controller resolves entries still open in its checkpoint with
//! [`MigrationJournal::resolve_in_flight`], which aborts them.

use crate::migration::MigrationReason;
use serde::{Deserialize, Serialize};
use willow_thermal::units::Watts;
use willow_topology::NodeId;
use willow_workload::app::AppId;

/// Monotonic migration-transaction id, unique within one controller run
/// (and across checkpoint/restore: the counter is checkpointed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxnId(pub u64);

impl std::fmt::Display for TxnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "txn{}", self.0)
    }
}

/// Lifecycle phase of a migration transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxnPhase {
    /// Validated and admitted; no copy work has happened yet.
    Prepared,
    /// State copied to the target; the placement has not flipped yet.
    Transferred,
    /// Placement flipped at the target — the migration is durable.
    Committed,
    /// Rolled back: the app remains at the source. Copy cost already
    /// incurred (an abort from [`TxnPhase::Transferred`]) stays charged.
    Aborted,
}

/// One migration transaction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationTxn {
    /// Journal-assigned id.
    pub id: TxnId,
    /// The application being moved.
    pub app: AppId,
    /// Source server (PMU-tree leaf).
    pub from: NodeId,
    /// Target server.
    pub to: NodeId,
    /// The app's demand at decision time (sizes the copy cost).
    pub demand: Watts,
    /// Why the migration was decided.
    pub reason: MigrationReason,
    /// Current lifecycle phase.
    pub phase: TxnPhase,
    /// Demand period in which the transaction was prepared.
    pub tick: u64,
}

impl MigrationTxn {
    /// True while the transaction has neither committed nor aborted.
    #[must_use]
    pub fn is_open(&self) -> bool {
        matches!(self.phase, TxnPhase::Prepared | TxnPhase::Transferred)
    }
}

/// Closed (committed/aborted) entries are kept for this many demand
/// periods so duplicated commit messages arriving late still hit the
/// idempotency check instead of a missing entry.
pub const TXN_RETAIN_TICKS: u64 = 2;

/// Bounded write-ahead journal of migration transactions.
///
/// Entries are appended by `begin` and pruned by `prune` once closed and
/// older than [`TXN_RETAIN_TICKS`]; open entries are never pruned, so a
/// checkpoint always carries every in-flight transaction. The backing
/// `Vec` keeps its capacity across prunes — on a quiet steady-state tick
/// the journal does no heap work at all.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MigrationJournal {
    next_id: u64,
    entries: Vec<MigrationTxn>,
}

impl MigrationJournal {
    /// Open a transaction in [`TxnPhase::Prepared`] and return its id.
    pub fn begin(
        &mut self,
        app: AppId,
        from: NodeId,
        to: NodeId,
        demand: Watts,
        reason: MigrationReason,
        tick: u64,
    ) -> TxnId {
        let id = TxnId(self.next_id);
        self.next_id += 1;
        self.entries.push(MigrationTxn {
            id,
            app,
            from,
            to,
            demand,
            reason,
            phase: TxnPhase::Prepared,
            tick,
        });
        id
    }

    /// The journal entry for `id`, if it has not been pruned.
    #[must_use]
    pub fn entry(&self, id: TxnId) -> Option<&MigrationTxn> {
        self.entries.iter().find(|e| e.id == id)
    }

    fn entry_mut(&mut self, id: TxnId) -> Option<&mut MigrationTxn> {
        self.entries.iter_mut().find(|e| e.id == id)
    }

    /// Record the copy work: [`TxnPhase::Prepared`] → `Transferred`.
    ///
    /// # Panics
    /// Panics if the transaction is unknown or not in `Prepared` — phase
    /// transitions are controller bugs, not runtime conditions.
    pub fn mark_transferred(&mut self, id: TxnId) {
        let e = self
            .entry_mut(id)
            .expect("transferring unknown transaction");
        assert_eq!(
            e.phase,
            TxnPhase::Prepared,
            "transfer out of order for {id}"
        );
        e.phase = TxnPhase::Transferred;
    }

    /// Commit `id`. Returns `true` exactly when *this* call performed the
    /// commit; a duplicate commit (already committed, or an entry already
    /// pruned after committing) returns `false` and changes nothing, which
    /// is what makes commits idempotent under message duplication.
    /// Committing an aborted transaction also returns `false`.
    pub fn commit(&mut self, id: TxnId) -> bool {
        match self.entry_mut(id) {
            Some(e) if e.is_open() => {
                e.phase = TxnPhase::Committed;
                true
            }
            _ => false,
        }
    }

    /// Abort `id` from either open phase; a no-op on closed entries.
    pub fn abort(&mut self, id: TxnId) {
        if let Some(e) = self.entry_mut(id) {
            if e.is_open() {
                e.phase = TxnPhase::Aborted;
            }
        }
    }

    /// Open (prepared or transferred) transactions, oldest first.
    pub fn in_flight(&self) -> impl Iterator<Item = &MigrationTxn> {
        self.entries.iter().filter(|e| e.is_open())
    }

    /// Abort every open transaction and return how many there were. This
    /// is the restart path: an entry a crashed controller left open never
    /// flipped a placement, so aborting it matches physical reality.
    pub fn resolve_in_flight(&mut self) -> usize {
        let mut resolved = 0;
        for e in &mut self.entries {
            if e.is_open() {
                e.phase = TxnPhase::Aborted;
                resolved += 1;
            }
        }
        resolved
    }

    /// Drop closed entries older than [`TXN_RETAIN_TICKS`] periods. Open
    /// entries are always kept.
    pub fn prune(&mut self, now: u64) {
        self.entries
            .retain(|e| e.is_open() || now.saturating_sub(e.tick) < TXN_RETAIN_TICKS);
    }

    /// Number of journal entries currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the journal holds no entries at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn begin(j: &mut MigrationJournal, tick: u64) -> TxnId {
        j.begin(
            AppId(7),
            NodeId(3),
            NodeId(5),
            Watts(42.0),
            MigrationReason::Demand,
            tick,
        )
    }

    #[test]
    fn happy_path_prepare_transfer_commit() {
        let mut j = MigrationJournal::default();
        let id = begin(&mut j, 10);
        assert_eq!(j.entry(id).unwrap().phase, TxnPhase::Prepared);
        j.mark_transferred(id);
        assert_eq!(j.entry(id).unwrap().phase, TxnPhase::Transferred);
        assert!(j.commit(id), "first commit performs the flip");
        assert_eq!(j.entry(id).unwrap().phase, TxnPhase::Committed);
    }

    #[test]
    fn duplicate_commit_is_idempotent() {
        let mut j = MigrationJournal::default();
        let id = begin(&mut j, 0);
        j.mark_transferred(id);
        assert!(j.commit(id));
        assert!(!j.commit(id), "duplicated commit message must be a no-op");
        assert_eq!(j.entry(id).unwrap().phase, TxnPhase::Committed);
        // Even after the entry ages out, a late duplicate stays a no-op.
        j.prune(100);
        assert!(!j.commit(id));
    }

    #[test]
    fn abort_from_either_open_phase_never_commits() {
        let mut j = MigrationJournal::default();
        let a = begin(&mut j, 0);
        j.abort(a); // reject before any copy work
        assert_eq!(j.entry(a).unwrap().phase, TxnPhase::Aborted);
        let b = begin(&mut j, 0);
        j.mark_transferred(b);
        j.abort(b); // dead link mid-flight
        assert_eq!(j.entry(b).unwrap().phase, TxnPhase::Aborted);
        assert!(!j.commit(a), "aborted transactions can never commit");
        assert!(!j.commit(b));
    }

    #[test]
    fn resolve_in_flight_aborts_open_entries_only() {
        let mut j = MigrationJournal::default();
        let done = begin(&mut j, 0);
        j.mark_transferred(done);
        assert!(j.commit(done));
        let prepared = begin(&mut j, 1);
        let transferred = begin(&mut j, 1);
        j.mark_transferred(transferred);
        assert_eq!(j.in_flight().count(), 2);
        assert_eq!(j.resolve_in_flight(), 2);
        assert_eq!(j.in_flight().count(), 0);
        assert_eq!(j.entry(done).unwrap().phase, TxnPhase::Committed);
        assert_eq!(j.entry(prepared).unwrap().phase, TxnPhase::Aborted);
        assert_eq!(j.entry(transferred).unwrap().phase, TxnPhase::Aborted);
    }

    #[test]
    fn prune_keeps_open_entries_and_recent_closures() {
        let mut j = MigrationJournal::default();
        let old = begin(&mut j, 0);
        j.mark_transferred(old);
        assert!(j.commit(old));
        let open = begin(&mut j, 0);
        let fresh = begin(&mut j, 9);
        j.abort(fresh);
        j.prune(10);
        assert!(j.entry(old).is_none(), "closed + old ⇒ pruned");
        assert!(j.entry(open).is_some(), "open entries are never pruned");
        assert!(j.entry(fresh).is_some(), "recent closures are retained");
    }

    #[test]
    fn ids_are_monotonic_and_survive_serde() {
        let mut j = MigrationJournal::default();
        let a = begin(&mut j, 0);
        let b = begin(&mut j, 0);
        assert!(b > a);
        let json = serde_json::to_string(&j).unwrap();
        let mut back: MigrationJournal = serde_json::from_str(&json).unwrap();
        assert_eq!(back, j);
        let c = begin(&mut back, 1);
        assert!(c > b, "the id counter must survive a round trip");
    }
}
