//! Centralized greedy baseline controller.
//!
//! The natural alternative to Willow's hierarchical, stability-aware
//! scheme: a central scheduler that re-solves the *entire* placement every
//! period with FFDLR, moving any application whose optimal host changed.
//! It balances budgets at least as well as Willow, but pays for it in
//! migration churn — exactly the cost Willow's margins, unidirectional
//! triggers, and local-first decomposition are designed to avoid. The
//! `ext_baseline` experiment quantifies the difference.
//!
//! The baseline shares Willow's substrates (thermal caps, proportional
//! budgets, cost model) so the comparison isolates the *control policy*.

use crate::config::ControllerConfig;
use crate::migration::{MigrationReason, MigrationRecord, TickReport};
use crate::server::{ServerSpec, ServerState};
use crate::state::PowerState;
use willow_binpack::packer_for;
use willow_power::allocation::allocate_proportional;
use willow_thermal::units::Watts;
use willow_topology::{NodeId, Tree};

/// The centralized greedy re-packer. Mirrors the subset of [`crate::Willow`]'s
/// API the experiments need.
pub struct GreedyGlobal {
    tree: Tree,
    config: ControllerConfig,
    servers: Vec<ServerState>,
    power: PowerState,
    tick: u64,
}

impl GreedyGlobal {
    /// Build the baseline for `tree` with one spec per leaf.
    ///
    /// # Panics
    /// Panics on invalid config or specs (this is a test/benchmark
    /// comparator, not a hardened API).
    #[must_use]
    pub fn new(tree: Tree, specs: Vec<ServerSpec>, config: ControllerConfig) -> Self {
        config.validate().expect("valid config");
        assert_eq!(
            specs.len(),
            tree.leaves().count(),
            "one spec per leaf required"
        );
        let servers: Vec<ServerState> = specs
            .iter()
            .map(|s| ServerState::from_spec(s, config.alpha))
            .collect();
        let power = PowerState::new(&tree);
        GreedyGlobal {
            tree,
            config,
            servers,
            power,
            tick: 0,
        }
    }

    /// Immutable view of server states.
    #[must_use]
    pub fn servers(&self) -> &[ServerState] {
        &self.servers
    }

    /// Drive one period: measure, allocate budgets, globally re-pack.
    pub fn step(&mut self, app_demand: &[Watts], supply: Watts) -> TickReport {
        let tick = self.tick;
        let mut report = TickReport {
            tick,
            supply_tick: true,
            ..TickReport::default()
        };

        // Measure (same smoothing as Willow).
        for server in &mut self.servers {
            for (i, app) in server.apps.iter().enumerate() {
                server.app_demand[i] = app_demand[app.id.0 as usize];
            }
            let raw = server.raw_demand();
            let smoothed = server.smoother.observe(raw);
            self.power.cp[server.node.index()] = smoothed;
            server.pending_cost = Watts::ZERO;
        }
        self.power.aggregate_demands(&self.tree);

        // Budgets: same thermal caps + proportional division as Willow.
        let window = self.config.delta_s();
        for server in &self.servers {
            self.power.cap[server.node.index()] = server.thermal.power_limit(window);
        }
        self.power.aggregate_caps(&self.tree);
        let root = self.tree.root();
        self.power.tp[root.index()] = supply.min(self.power.cap[root.index()]);
        for level in (1..=self.tree.height()).rev() {
            for &node in self.tree.nodes_at_level(level) {
                let children = self.tree.children(node);
                let demands: Vec<Watts> =
                    children.iter().map(|c| self.power.cp[c.index()]).collect();
                let caps: Vec<Watts> = children.iter().map(|c| self.power.cap[c.index()]).collect();
                let budgets = allocate_proportional(self.power.tp[node.index()], &demands, &caps)
                    .expect("validated inputs");
                for (c, b) in children.iter().zip(budgets) {
                    self.power.tp[c.index()] = b;
                }
            }
        }

        // Global re-pack: every app is an item, every server's full budget
        // is a bin.
        let mut items: Vec<(usize, usize, Watts)> = Vec::new(); // (server, app idx, demand)
        for (si, server) in self.servers.iter().enumerate() {
            for (ai, &d) in server.app_demand.iter().enumerate() {
                items.push((si, ai, d));
            }
        }
        let sizes: Vec<f64> = items.iter().map(|(_, _, d)| d.0).collect();
        let bins: Vec<NodeId> = self.servers.iter().map(|s| s.node).collect();
        let caps: Vec<f64> = bins
            .iter()
            .map(|l| {
                (self.power.tp[l.index()] - self.servers[self.server_of(*l)].base_load)
                    .0
                    .max(0.0)
            })
            .collect();
        let packing = packer_for(self.config.packer).pack(&sizes, &caps);

        // Execute the diff: any app whose assigned bin differs from its
        // current host migrates.
        let mut moves: Vec<(usize, usize, usize)> = Vec::new(); // (src server, app idx, dst server)
        for (idx, (si, ai, _)) in items.iter().enumerate() {
            if let Some(b) = packing.assignment[idx] {
                if b != *si {
                    moves.push((*si, *ai, b));
                }
            }
        }
        // Remove in descending app-index order per server to keep indices
        // valid.
        moves.sort_by_key(|m| std::cmp::Reverse(m.1));
        for (src, ai, dst) in moves {
            let (app, demand) = self.servers[src].take_app(ai);
            let from = self.servers[src].node;
            let to = self.servers[dst].node;
            self.servers[dst].host_app(app.clone(), demand);
            let local = self.tree.are_siblings(from, to);
            report.migrations.push(MigrationRecord {
                tick,
                app: app.id,
                from,
                to,
                moved: demand,
                reason: MigrationReason::Demand,
                local,
                hops: self.tree.path_len(from, to).saturating_sub(1),
                pingpong: false,
            });
        }

        // Physics (same as Willow's).
        for server in &mut self.servers {
            let leaf = server.node.index();
            self.power.cp[leaf] = server.raw_demand();
        }
        self.power.aggregate_demands(&self.tree);
        let mut dropped = Watts::ZERO;
        for server in &mut self.servers {
            let leaf = server.node.index();
            let budget = self.power.tp[leaf];
            let demand = self.power.cp[leaf];
            let drawn = demand.min(budget);
            dropped += (demand - budget).non_negative();
            server.thermal.advance(drawn, self.config.delta_d);
            report.server_power.push(drawn);
            report.server_budget.push(budget);
            report.server_temp.push(server.thermal.temperature());
            report.server_active.push(server.active);
        }
        report.dropped_demand = dropped;
        for level in 0..=self.tree.height() {
            report
                .imbalance
                .push(self.power.level_imbalance(&self.tree, level));
        }
        self.tick += 1;
        report
    }

    fn server_of(&self, leaf: NodeId) -> usize {
        self.servers
            .iter()
            .position(|s| s.node == leaf)
            .expect("every leaf has a server")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use willow_workload::app::{AppId, Application, SIM_APP_CLASSES};

    fn setup() -> (GreedyGlobal, usize) {
        let tree = Tree::uniform(&[2, 2]);
        let mut id = 0u32;
        let specs: Vec<ServerSpec> = tree
            .leaves()
            .map(|leaf| {
                let apps: Vec<Application> = (0..2)
                    .map(|_| {
                        let a = Application::new(AppId(id), 0, &SIM_APP_CLASSES[0]);
                        id += 1;
                        a
                    })
                    .collect();
                ServerSpec::simulation_default(leaf).with_apps(apps)
            })
            .collect();
        (
            GreedyGlobal::new(tree, specs, ControllerConfig::default()),
            id as usize,
        )
    }

    #[test]
    fn conserves_apps_and_respects_budgets() {
        let (mut g, n_apps) = setup();
        let demands: Vec<Watts> = (0..n_apps).map(|i| Watts(10.0 + 3.0 * i as f64)).collect();
        for _ in 0..30 {
            let r = g.step(&demands, Watts(1500.0));
            let hosted: usize = g.servers().iter().map(|s| s.apps.len()).sum();
            assert_eq!(hosted, n_apps);
            assert!(r.total_power().0 <= 1500.0 + 1e-6);
        }
    }

    #[test]
    fn repacks_aggressively() {
        // Alternating demand shifts make the global optimum flip; the
        // greedy baseline chases it with migrations where Willow's margins
        // would hold still.
        let (mut g, n_apps) = setup();
        let mut total_migs = 0;
        for t in 0..40u64 {
            let demands: Vec<Watts> = (0..n_apps)
                .map(|i| {
                    if (i as u64 + t / 4).is_multiple_of(2) {
                        Watts(60.0)
                    } else {
                        Watts(15.0)
                    }
                })
                .collect();
            let r = g.step(&demands, Watts(700.0));
            total_migs += r.migrations.len();
        }
        assert!(total_migs > 10, "greedy must churn: {total_migs}");
    }
}
