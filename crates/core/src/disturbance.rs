//! Fault disturbances applied to one control period.
//!
//! The controller itself stays deterministic and data-driven: a fault
//! injector (e.g. `willow-sim`'s `FaultInjector`) pre-rolls everything
//! random into a [`Disturbances`] value, and [`crate::Willow::step_with`]
//! consumes it. An empty value (the `Default`) means a fault-free period,
//! and `Willow::step` is exactly `step_with` with that default — so the
//! fault machinery adds no behavioral difference to fault-free runs.

use serde::{Deserialize, Serialize};
use willow_thermal::units::Celsius;

/// Pre-rolled outcome of one migration attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MigrationOutcome {
    /// The migration completes normally.
    Success,
    /// The destination refuses admission before any state is copied: the
    /// app stays put, nothing is charged, and the app enters retry backoff.
    Reject,
    /// The migration aborts mid-flight: the copy work already happened —
    /// both end nodes pay the temporary cost and the fabric carried the
    /// traffic — but the app stays at the source and source accounting is
    /// restored.
    Abort,
}

/// Everything that goes wrong in one demand period, pre-rolled as data.
///
/// All per-server vectors are indexed by *server index* (the order of
/// [`crate::Willow::servers`]); vectors shorter than the server count —
/// including empty ones — read as "no fault" for the missing entries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Disturbances {
    /// Servers whose PMU is crashed this period: their demand report and
    /// budget directive are both lost and they are ineligible migration
    /// targets.
    pub crashed: Vec<bool>,
    /// Servers whose upward demand report is lost this period (the
    /// hierarchy keeps its stale view of the leaf's demand).
    pub report_lost: Vec<bool>,
    /// Servers whose downward budget directive is lost (only meaningful on
    /// supply ticks; the stale-directive watchdog reacts to these).
    pub directive_lost: Vec<bool>,
    /// Absolute sensor override per server (a stuck-at temperature sensor).
    pub sensor_override: Vec<Option<Celsius>>,
    /// Additive sensor error per server in °C (a noisy sensor). Applied
    /// only when no override is present.
    pub sensor_offset: Vec<f64>,
    /// Outcomes of this period's migration attempts, consumed in decision
    /// order. Attempts beyond the end of the list succeed.
    pub migration_outcomes: Vec<MigrationOutcome>,
}

impl Disturbances {
    /// A fault-free period.
    #[must_use]
    pub fn none() -> Self {
        Disturbances::default()
    }

    /// Overwrite `self` with `other`, reusing the existing buffers. The
    /// controller takes its per-tick copy of the caller's disturbances
    /// through this instead of `Clone`, so driving quiet (or same-sized)
    /// disturbance sets every period costs no heap allocation.
    pub fn assign_from(&mut self, other: &Disturbances) {
        self.crashed.clone_from(&other.crashed);
        self.report_lost.clone_from(&other.report_lost);
        self.directive_lost.clone_from(&other.directive_lost);
        self.sensor_override.clone_from(&other.sensor_override);
        self.sensor_offset.clone_from(&other.sensor_offset);
        self.migration_outcomes
            .clone_from(&other.migration_outcomes);
    }

    /// Is server `si`'s PMU crashed this period?
    #[must_use]
    pub fn crashed(&self, si: usize) -> bool {
        self.crashed.get(si).copied().unwrap_or(false)
    }

    /// Is server `si`'s demand report lost this period (crash implies yes)?
    #[must_use]
    pub fn report_lost(&self, si: usize) -> bool {
        self.report_lost.get(si).copied().unwrap_or(false) || self.crashed(si)
    }

    /// Is server `si`'s budget directive lost this period (crash implies
    /// yes)?
    #[must_use]
    pub fn directive_lost(&self, si: usize) -> bool {
        self.directive_lost.get(si).copied().unwrap_or(false) || self.crashed(si)
    }

    /// The temperature server `si`'s sensor *reads* when the true
    /// temperature is `actual`: the stuck-at override if present, otherwise
    /// the truth plus the noise offset.
    #[must_use]
    pub fn measured_temp(&self, si: usize, actual: Celsius) -> Celsius {
        if let Some(Some(stuck)) = self.sensor_override.get(si) {
            return *stuck;
        }
        Celsius(actual.0 + self.sensor_offset.get(si).copied().unwrap_or(0.0))
    }

    /// The outcome of migration attempt number `attempt` (0-based) this
    /// period. Attempts beyond the pre-rolled list succeed.
    #[must_use]
    pub fn migration_outcome(&self, attempt: usize) -> MigrationOutcome {
        self.migration_outcomes
            .get(attempt)
            .copied()
            .unwrap_or(MigrationOutcome::Success)
    }

    /// True when this value injects no fault at all.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        !self.crashed.iter().any(|&b| b)
            && !self.report_lost.iter().any(|&b| b)
            && !self.directive_lost.iter().any(|&b| b)
            && self.sensor_override.iter().all(Option::is_none)
            && self.sensor_offset.iter().all(|&x| x == 0.0)
            && self
                .migration_outcomes
                .iter()
                .all(|&o| o == MigrationOutcome::Success)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_quiet_and_faultless() {
        let d = Disturbances::none();
        assert!(d.is_quiet());
        assert!(!d.crashed(0));
        assert!(!d.report_lost(7));
        assert!(!d.directive_lost(7));
        assert_eq!(d.measured_temp(3, Celsius(55.0)), Celsius(55.0));
        assert_eq!(d.migration_outcome(0), MigrationOutcome::Success);
        assert_eq!(d.migration_outcome(100), MigrationOutcome::Success);
    }

    #[test]
    fn crash_implies_both_message_losses() {
        let d = Disturbances {
            crashed: vec![false, true],
            ..Disturbances::default()
        };
        assert!(!d.is_quiet());
        assert!(d.report_lost(1));
        assert!(d.directive_lost(1));
        assert!(!d.report_lost(0));
    }

    #[test]
    fn sensor_override_beats_offset() {
        let d = Disturbances {
            sensor_override: vec![None, Some(Celsius(90.0))],
            sensor_offset: vec![2.5, 2.5],
            ..Disturbances::default()
        };
        assert_eq!(d.measured_temp(0, Celsius(50.0)), Celsius(52.5));
        assert_eq!(d.measured_temp(1, Celsius(50.0)), Celsius(90.0));
    }

    #[test]
    fn migration_outcomes_consumed_in_order() {
        let d = Disturbances {
            migration_outcomes: vec![MigrationOutcome::Reject, MigrationOutcome::Abort],
            ..Disturbances::default()
        };
        assert_eq!(d.migration_outcome(0), MigrationOutcome::Reject);
        assert_eq!(d.migration_outcome(1), MigrationOutcome::Abort);
        assert_eq!(d.migration_outcome(2), MigrationOutcome::Success);
    }
}
