//! Controller configuration (the paper's tunables, §IV-C/§IV-E/§V-B1).

use serde::{Deserialize, Serialize};
use willow_network::MigrationCostModel;
use willow_thermal::units::{Seconds, Watts};

/// Which bin-packing algorithm the migration planner uses (§IV-F; the paper
/// chooses FFDLR, the alternatives exist for the packer ablation).
///
/// An alias for [`willow_binpack::PackerStrategy`]: the strategy enum and
/// its [`willow_binpack::packer_for`] constructor live next to the packers
/// themselves, so every controller (pipeline, frozen reference, greedy
/// baseline) selects its heuristic through the same single match. The
/// serialized form is the bare variant name either way, so persisted
/// experiment configs are unaffected by the aliasing.
pub use willow_binpack::PackerStrategy as PackerChoice;

/// Which [`MigrationTargetPolicy`](crate::control::MigrationTargetPolicy)
/// orders the eligible target bins of each demand-side packing instance.
///
/// Like [`PackerChoice`], this selects a deterministic, stateless policy
/// that [`ControlPolicies::for_config`](crate::control::ControlPolicies)
/// constructs from config alone — checkpoint restore rebuilds it without
/// serializing any policy state. The default reproduces the paper's
/// behavior bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum TargetPolicyChoice {
    /// Ascending arena id — "first eligible server in tree order"
    /// ([`AscendingIdTargets`](crate::control::AscendingIdTargets),
    /// the paper's evaluation order; default).
    #[default]
    AscendingId,
    /// Tightest surplus first
    /// ([`BestFitTargets`](crate::control::BestFitTargets)).
    BestFit,
    /// Coolest server (largest thermal headroom) first
    /// ([`ThermalHeadroomTargets`](crate::control::ThermalHeadroomTargets)).
    ThermalHeadroom,
}

/// Which [`ConsolidationOrderPolicy`](crate::control::ConsolidationOrderPolicy)
/// orders consolidation's evacuation victims and receiver bins.
///
/// Selected the same way as [`TargetPolicyChoice`]; the default reproduces
/// the paper's behavior bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ConsolidationPolicyChoice {
    /// Thermally constrained victims first, coolest receivers first
    /// ([`HotZonesFirst`](crate::control::HotZonesFirst), the paper's
    /// ordering; default).
    #[default]
    HotZonesFirst,
    /// Emptiest victims first, fullest receivers first
    /// ([`EmptiestFirst`](crate::control::EmptiestFirst)).
    EmptiestFirst,
    /// Receivers with the largest power headroom first
    /// ([`MostHeadroomReceivers`](crate::control::MostHeadroomReceivers)).
    MostHeadroomReceivers,
}

/// Whether the supply/consolidation stages act on forecasts from the
/// planning seam ([`PlanningContext`](crate::control::PlanningContext)) or
/// only on current measurements.
///
/// Unlike the other policy knobs this does not swap a trait object: the
/// predictive behaviors live inside the stages, gated on this choice, and
/// draw on forecaster state that *is* serialized (in `WillowSnapshot`), so
/// a restored controller continues predicting bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SupplyPolicyChoice {
    /// The paper's purely reactive control (default): every stage decides
    /// from the current tick's measurements.
    #[default]
    Reactive,
    /// MPC-style predictive control: tighten the root budget ahead of a
    /// forecast supply dip, veto consolidation victims whose demand is
    /// forecast to ramp past the threshold, and pre-wake sleeping servers
    /// ahead of a forecast supply/demand shortfall. Tighten-only and
    /// wake-only — forecasts can start defensive action early but never
    /// loosen a physical budget.
    Predictive,
}

/// How the unidirectional "no migrations into reduced-budget nodes" rule
/// (§IV-E) is interpreted. See `DESIGN.md`: the literal reading conflicts
/// with the paper's own deficit experiment, where a global supply plunge —
/// which reduces *every* budget proportionally — triggers migrations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReducedTargetRule {
    /// A node is an ineligible target if its budget shrank *more than its
    /// parent's budget shrank proportionally* this supply period — i.e. it
    /// was disproportionately tightened (thermal cap, redistribution away
    /// from it). Global proportional dips do not disqualify targets. This
    /// matches the paper's experiments and is the default.
    Disproportionate,
    /// Literal reading: any budget decrease disqualifies the node as a
    /// target (used by the `ablation_unidirectional` bench).
    Strict,
    /// Rule disabled (used by ablations).
    Off,
}

/// How a parent's budget is divided among its children on supply ticks.
///
/// §IV-A states budgets are split "in proportion to their demands"; the
/// testbed experiments (§V-C4) instead divide "the available power supply …
/// proportionally between the servers" in a way that leaves high-utilization
/// servers deficient when supply plunges — which only happens with an
/// equal/capacity split (a pure demand-proportional split scales everyone's
/// budget by the same factor and never creates a surplus to migrate into).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocationPolicy {
    /// Proportional to smoothed demand `CP` (paper §IV-A; simulation
    /// default). Hard caps (thermal) still bind, which is what generates
    /// migrations in the hot-zone experiments.
    ProportionalToDemand,
    /// Equal share per child, clipped by caps (testbed experiments).
    EqualShare,
    /// Proportional to each child's hard cap.
    ProportionalToCapacity,
}

/// Demand-smoothing scheme (paper §IV-C: "although it is possible to use
/// sophisticated ARIMA type of models, a simple exponential smoothing is
/// often adequate").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SmootherKind {
    /// Eq. 4 exponential smoothing with the configured `alpha` (default).
    Exponential,
    /// Holt double-exponential (level + trend) smoothing with the
    /// configured `alpha` as level gain and this trend gain — tracks
    /// demand ramps without the persistent lag of Eq. 4.
    Holt {
        /// Trend gain `β ∈ (0, 1)`.
        beta: f64,
    },
}

/// How the thermal hard constraint is derived from a device's state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThermalEstimate {
    /// Invert Eq. 3 over the next `Δ_S` window (the paper's conservative
    /// end-of-window prediction; default).
    WindowPrediction,
    /// Naive reactive throttling: full rating while under the limit, zero
    /// once over it — the strawman the `ablation_thermal` bench compares
    /// against (oscillates and can overshoot between supply ticks).
    NaiveThrottle,
}

/// Tunables of the degraded-mode defenses (stale-directive watchdog,
/// sensor-plausibility filter, migration retry backoff). These only change
/// behavior when faults actually occur; fault-free trajectories are
/// identical for any valid setting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RobustnessConfig {
    /// Number of consecutive *missed* budget directives after which a
    /// server's watchdog trips and falls back to the conservative local
    /// cap. Must be ≥ 1.
    pub watchdog_threshold: u32,
    /// The fallback cap as a fraction of the server's rating, in (0, 1].
    /// While tripped, the server's budget is the minimum of its stale
    /// directive, its local thermal cap and this fraction of its rating —
    /// never looser than anything it last heard (tightening-only).
    pub watchdog_cap_fraction: f64,
    /// Plausibility tolerance of the temperature filter in °C: a sensor
    /// reading farther than this from the RC-model prediction (previous
    /// accepted temperature advanced by the metered power draw) is rejected
    /// and the prediction is used instead.
    pub sensor_slack: f64,
    /// Retry backoff base in demand periods: after `n` consecutive
    /// failures an app may retry after `retry_base · 2^(n−1)` periods
    /// (exponent capped by `retry_cap`). Must be ≥ 1.
    pub retry_base: u64,
    /// Cap on the backoff exponent (bounds the wait at
    /// `retry_base · 2^retry_cap`).
    pub retry_cap: u32,
}

impl Default for RobustnessConfig {
    fn default() -> Self {
        RobustnessConfig {
            watchdog_threshold: 3,
            watchdog_cap_fraction: 0.5,
            sensor_slack: 2.0,
            retry_base: 1,
            retry_cap: 5,
        }
    }
}

impl RobustnessConfig {
    /// Validate the invariants documented on each field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.watchdog_threshold == 0 {
            return Err(ConfigError::Watchdog);
        }
        if !(self.watchdog_cap_fraction > 0.0 && self.watchdog_cap_fraction <= 1.0) {
            return Err(ConfigError::Watchdog);
        }
        if !(self.sensor_slack.is_finite() && self.sensor_slack >= 0.0) {
            return Err(ConfigError::SensorSlack(self.sensor_slack));
        }
        if self.retry_base == 0 || self.retry_cap > 32 {
            return Err(ConfigError::Retry);
        }
        Ok(())
    }
}

/// All Willow tunables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Exponential-smoothing parameter `α` of Eq. 4, `0 < α < 1`.
    pub alpha: f64,
    /// Which smoother turns raw measurements into `CP` values.
    pub smoother: SmootherKind,
    /// Supply-side multiplier: `Δ_S = η1·Δ_D`. Paper simulations use 4.
    pub eta1: u32,
    /// Consolidation multiplier: `Δ_A = η2·Δ_D`, `η2 > η1`. Paper uses 7.
    pub eta2: u32,
    /// Wall-clock length of one demand period `Δ_D`. The paper argues
    /// ≥ 500 ms is safe; simulations use abstract "time units", we default
    /// to 1 s.
    pub delta_d: Seconds,
    /// Migration margin `P_min`: minimum surplus both end nodes must retain
    /// after a migration (§IV-E).
    pub margin: Watts,
    /// Consolidation threshold: servers whose utilization (demand relative
    /// to full-load power) falls below this fraction become consolidation
    /// sources (the testbed uses 20 %).
    pub consolidation_threshold: f64,
    /// Migration cost model (temporary power + fabric traffic).
    pub cost_model: MigrationCostModel,
    /// Bin-packing algorithm for matching deficits with surpluses.
    pub packer: PackerChoice,
    /// Budget-division policy on supply ticks.
    pub allocation: AllocationPolicy,
    /// How thermal limits become power caps.
    pub thermal_estimate: ThermalEstimate,
    /// Interpretation of the reduced-budget target rule.
    pub reduced_rule: ReducedTargetRule,
    /// Wake sleeping servers (at consolidation granularity) when demand had
    /// to be dropped for lack of surplus.
    pub wake_on_deficit: bool,
    /// Ping-pong window `Δ_f` in demand periods: re-migrating an app within
    /// this window after its last move counts as a ping-pong event in the
    /// stability statistics (paper observes none for `Δ_f < 50·Δ_D`).
    pub pingpong_window: u64,
    /// Fabric traffic units generated per watt actually drawn by a server —
    /// the *indirect* network impact: query traffic follows the VMs to
    /// wherever they run (§V-B5).
    pub query_traffic_per_watt: f64,
    /// Degraded-mode defense tunables (watchdog, sensor filter, retry
    /// backoff).
    pub robustness: RobustnessConfig,
    /// Worker threads for the sharded pipeline stages (per-server physics,
    /// per-level deficit packing). `1` runs every stage serially on the
    /// control thread (and stays allocation-free per tick); `0` means
    /// auto-detect from available parallelism; `n > 1` shards across `n`
    /// threads with fixed shard boundaries and a deterministic reduction
    /// order, so results are bit-for-bit identical to the serial path at
    /// any thread count. Absent in persisted configs from before this
    /// field existed, which deserialize as `0` (auto).
    #[serde(default)]
    pub threads: usize,
    /// Target-bin ordering for demand-side packing instances. Absent in
    /// persisted configs from before this field existed, which deserialize
    /// as the paper's default ordering.
    #[serde(default)]
    pub target_policy: TargetPolicyChoice,
    /// Victim/receiver ordering for consolidation. Absent in persisted
    /// configs from before this field existed, which deserialize as the
    /// paper's default ordering.
    #[serde(default)]
    pub consolidation_policy: ConsolidationPolicyChoice,
    /// Reactive (paper) vs predictive (forecast-driven) supply/demand
    /// control. Absent in persisted configs from before the planning seam
    /// existed, which deserialize as the paper's reactive behavior.
    #[serde(default)]
    pub supply_policy: SupplyPolicyChoice,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            alpha: 0.5,
            smoother: SmootherKind::Exponential,
            eta1: 4,
            eta2: 7,
            delta_d: Seconds(1.0),
            margin: Watts(5.0),
            consolidation_threshold: 0.20,
            cost_model: MigrationCostModel::default(),
            packer: PackerChoice::Ffdlr,
            allocation: AllocationPolicy::ProportionalToDemand,
            thermal_estimate: ThermalEstimate::WindowPrediction,
            reduced_rule: ReducedTargetRule::Disproportionate,
            wake_on_deficit: true,
            pingpong_window: 50,
            query_traffic_per_watt: 1.0,
            robustness: RobustnessConfig::default(),
            threads: 1,
            target_policy: TargetPolicyChoice::AscendingId,
            consolidation_policy: ConsolidationPolicyChoice::HotZonesFirst,
            supply_policy: SupplyPolicyChoice::Reactive,
        }
    }
}

impl ControllerConfig {
    /// Validate the invariants the paper states (`0 < α < 1`, `η2 > η1 ≥ 1`,
    /// positive periods, sane fractions).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.alpha > 0.0 && self.alpha < 1.0) {
            return Err(ConfigError::Alpha(self.alpha));
        }
        if let SmootherKind::Holt { beta } = self.smoother {
            if !(beta > 0.0 && beta < 1.0) {
                return Err(ConfigError::Alpha(beta));
            }
        }
        if self.eta1 == 0 || self.eta2 <= self.eta1 {
            return Err(ConfigError::Granularities {
                eta1: self.eta1,
                eta2: self.eta2,
            });
        }
        if !self.delta_d.is_positive() {
            return Err(ConfigError::Period);
        }
        if !self.margin.is_valid() {
            return Err(ConfigError::Margin);
        }
        if !(0.0..=1.0).contains(&self.consolidation_threshold) {
            return Err(ConfigError::Threshold(self.consolidation_threshold));
        }
        self.robustness.validate()
    }

    /// The supply-side period `Δ_S` in seconds.
    #[must_use]
    pub fn delta_s(&self) -> Seconds {
        self.delta_d * f64::from(self.eta1)
    }

    /// The consolidation period `Δ_A` in seconds.
    #[must_use]
    pub fn delta_a(&self) -> Seconds {
        self.delta_d * f64::from(self.eta2)
    }
}

/// Configuration validation errors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// `α` outside (0, 1).
    Alpha(f64),
    /// `η1`/`η2` violate `η2 > η1 ≥ 1`.
    Granularities {
        /// Supplied η1.
        eta1: u32,
        /// Supplied η2.
        eta2: u32,
    },
    /// Non-positive `Δ_D`.
    Period,
    /// Invalid margin.
    Margin,
    /// Consolidation threshold outside [0, 1].
    Threshold(f64),
    /// Watchdog threshold or cap fraction out of range.
    Watchdog,
    /// Sensor-plausibility slack negative or non-finite.
    SensorSlack(f64),
    /// Retry backoff base zero or exponent cap too large.
    Retry,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Alpha(a) => write!(f, "α must be in (0,1), got {a}"),
            ConfigError::Granularities { eta1, eta2 } => {
                write!(f, "need η2 > η1 ≥ 1, got η1={eta1}, η2={eta2}")
            }
            ConfigError::Period => write!(f, "Δ_D must be positive"),
            ConfigError::Margin => write!(f, "margin must be finite and ≥ 0"),
            ConfigError::Threshold(t) => {
                write!(f, "consolidation threshold must be in [0,1], got {t}")
            }
            ConfigError::Watchdog => {
                write!(f, "watchdog needs threshold ≥ 1 and cap fraction in (0,1]")
            }
            ConfigError::SensorSlack(s) => {
                write!(f, "sensor slack must be finite and ≥ 0, got {s}")
            }
            ConfigError::Retry => {
                write!(f, "retry backoff needs base ≥ 1 and exponent cap ≤ 32")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper() {
        let c = ControllerConfig::default();
        c.validate().unwrap();
        assert_eq!(c.eta1, 4);
        assert_eq!(c.eta2, 7);
        assert_eq!(c.packer, PackerChoice::Ffdlr);
        assert_eq!(c.consolidation_threshold, 0.20);
    }

    #[test]
    fn derived_periods() {
        let c = ControllerConfig::default();
        assert_eq!(c.delta_s(), Seconds(4.0));
        assert_eq!(c.delta_a(), Seconds(7.0));
    }

    #[test]
    fn rejects_bad_alpha() {
        let mut c = ControllerConfig::default();
        c.alpha = 1.0;
        assert_eq!(c.validate(), Err(ConfigError::Alpha(1.0)));
        c.alpha = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_eta_order_violation() {
        let mut c = ControllerConfig::default();
        c.eta1 = 7;
        c.eta2 = 7;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::Granularities { .. })
        ));
        c.eta1 = 0;
        c.eta2 = 3;
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_bad_threshold() {
        let mut c = ControllerConfig::default();
        c.consolidation_threshold = 1.5;
        assert!(matches!(c.validate(), Err(ConfigError::Threshold(_))));
    }

    #[test]
    fn serde_round_trip_all_variants() {
        // Every enum knob must survive serialization (experiment configs
        // are persisted as JSON by the CLI).
        for packer in [
            PackerChoice::Ffdlr,
            PackerChoice::FirstFitDecreasing,
            PackerChoice::BestFitDecreasing,
            PackerChoice::NextFit,
        ] {
            for rule in [
                ReducedTargetRule::Disproportionate,
                ReducedTargetRule::Strict,
                ReducedTargetRule::Off,
            ] {
                let mut c = ControllerConfig::default();
                c.packer = packer;
                c.reduced_rule = rule;
                c.smoother = SmootherKind::Holt { beta: 0.25 };
                c.thermal_estimate = ThermalEstimate::NaiveThrottle;
                c.allocation = AllocationPolicy::ProportionalToCapacity;
                c.target_policy = TargetPolicyChoice::ThermalHeadroom;
                c.consolidation_policy = ConsolidationPolicyChoice::EmptiestFirst;
                let json = serde_json::to_string(&c).unwrap();
                let back: ControllerConfig = serde_json::from_str(&json).unwrap();
                assert_eq!(c, back);
            }
        }
        // And every policy-choice variant individually.
        for target in [
            TargetPolicyChoice::AscendingId,
            TargetPolicyChoice::BestFit,
            TargetPolicyChoice::ThermalHeadroom,
        ] {
            for consolidation in [
                ConsolidationPolicyChoice::HotZonesFirst,
                ConsolidationPolicyChoice::EmptiestFirst,
                ConsolidationPolicyChoice::MostHeadroomReceivers,
            ] {
                for supply in [SupplyPolicyChoice::Reactive, SupplyPolicyChoice::Predictive] {
                    let mut c = ControllerConfig::default();
                    c.target_policy = target;
                    c.consolidation_policy = consolidation;
                    c.supply_policy = supply;
                    let json = serde_json::to_string(&c).unwrap();
                    let back: ControllerConfig = serde_json::from_str(&json).unwrap();
                    assert_eq!(c, back);
                }
            }
        }
    }

    #[test]
    fn policy_fields_default_when_absent() {
        // Persisted configs from before the policy race existed have no
        // `target_policy`/`consolidation_policy` keys; they must still load
        // as the paper's default orderings.
        let c = ControllerConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let stripped = json
            .replacen(",\"target_policy\":\"AscendingId\"", "", 1)
            .replacen(",\"consolidation_policy\":\"HotZonesFirst\"", "", 1)
            .replacen(",\"supply_policy\":\"Reactive\"", "", 1);
        assert_ne!(stripped, json, "policy keys found in serialized config");
        let back: ControllerConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.target_policy, TargetPolicyChoice::AscendingId);
        assert_eq!(
            back.consolidation_policy,
            ConsolidationPolicyChoice::HotZonesFirst
        );
        assert_eq!(back.supply_policy, SupplyPolicyChoice::Reactive);
        back.validate().unwrap();
    }

    #[test]
    fn threads_field_defaults_when_absent() {
        // Persisted configs from before the sharded pipeline existed have
        // no `threads` key; they must still load (as 0 = auto).
        let c = ControllerConfig::default();
        assert_eq!(c.threads, 1, "in-code default stays serial");
        let json = serde_json::to_string(&c).unwrap();
        let stripped = json.replacen(",\"threads\":1", "", 1);
        assert_ne!(stripped, json, "threads key found in serialized config");
        let back: ControllerConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back.threads, 0);
        back.validate().unwrap();
    }

    #[test]
    fn holt_beta_validated() {
        let mut c = ControllerConfig::default();
        c.smoother = SmootherKind::Holt { beta: 1.0 };
        assert!(c.validate().is_err());
        c.smoother = SmootherKind::Holt { beta: 0.3 };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rejects_nonpositive_period() {
        let mut c = ControllerConfig::default();
        c.delta_d = Seconds(0.0);
        assert_eq!(c.validate(), Err(ConfigError::Period));
    }
}
