//! Always-on runtime invariant auditor.
//!
//! The controller's safety case rests on a handful of structural
//! invariants that must hold after *every* demand period, no matter what
//! faults were injected or how degraded the control plane is:
//!
//! 1. **App conservation** — every application lives on exactly one
//!    server, and only powered (active) servers host applications.
//! 2. **Budget hierarchy** — at every PMU node, the children's budgets
//!    sum to at most the node's own budget (power can be stranded, never
//!    invented). A leaf with a *stale* directive (its watchdog counts at
//!    least one miss) intentionally holds its previously applied budget,
//!    which may exceed the share the hierarchy just allocated it — such
//!    leaves are excluded from the sum and governed by invariant 3
//!    instead.
//! 3. **Tightening-only while stale** — a server that has not received a
//!    fresh directive since the previous audit (watchdog misses > 0 then
//!    and not reset since) must never see its applied budget increase.
//!    This subsumes the tripped-watchdog case: a degraded leaf must not
//!    loosen itself.
//! 4. **Physical sanity** — no NaN, infinite, or negative watts anywhere
//!    in the budget/demand/cap state, and finite accepted temperatures.
//!
//! [`Auditor::check`] verifies all four against a [`Willow`] in `O(apps +
//! nodes)` with no steady-state allocation, returning typed
//! [`InvariantViolation`]s. The chaos harness and the simulation engine
//! run it after every tick; [`Auditor::panic_on_violation`] turns any
//! violation into a panic for CI.

use crate::controller::Willow;
use willow_thermal::units::Watts;
use willow_topology::NodeId;
use willow_workload::app::AppId;

/// One violated runtime invariant, with enough context to debug it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InvariantViolation {
    /// An application from the audited universe is hosted nowhere.
    AppLost {
        /// The missing application.
        app: AppId,
    },
    /// An application is hosted on more than one server.
    AppDuplicated {
        /// The duplicated application.
        app: AppId,
        /// How many servers host it.
        copies: u32,
    },
    /// A hosted application was never part of the audited universe.
    AppUnknown {
        /// The unexpected application.
        app: AppId,
        /// The server hosting it.
        server: usize,
    },
    /// A server in deep sleep still hosts applications.
    SleepingServerHostsApps {
        /// The sleeping server.
        server: usize,
        /// How many applications it holds.
        apps: usize,
    },
    /// A PMU node's children were granted more budget than the node has.
    BudgetOverflow {
        /// The over-committed node.
        node: NodeId,
        /// Sum of the children's budgets.
        children: Watts,
        /// The node's own budget.
        budget: Watts,
    },
    /// A server's budget increased while its directive was stale.
    LoosenedWhileStale {
        /// The degraded server.
        server: usize,
        /// Budget at the previous audit.
        was: Watts,
        /// Budget now.
        now: Watts,
    },
    /// A power/temperature state entry is NaN or infinite.
    NonFinite {
        /// Which state vector (`"tp"`, `"cp"`, …).
        what: &'static str,
        /// Arena or server index into that vector.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A power state entry is negative.
    NegativeWatts {
        /// Which state vector.
        what: &'static str,
        /// Arena or server index into that vector.
        index: usize,
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvariantViolation::AppLost { app } => {
                write!(f, "{app} is hosted on no server")
            }
            InvariantViolation::AppDuplicated { app, copies } => {
                write!(f, "{app} is hosted on {copies} servers")
            }
            InvariantViolation::AppUnknown { app, server } => {
                write!(f, "server {server} hosts unknown {app}")
            }
            InvariantViolation::SleepingServerHostsApps { server, apps } => {
                write!(f, "sleeping server {server} still hosts {apps} apps")
            }
            InvariantViolation::BudgetOverflow {
                node,
                children,
                budget,
            } => {
                write!(
                    f,
                    "children of {node} granted {children} out of a {budget} budget"
                )
            }
            InvariantViolation::LoosenedWhileStale { server, was, now } => {
                write!(
                    f,
                    "server {server} loosened {was} -> {now} without a fresh directive"
                )
            }
            InvariantViolation::NonFinite { what, index, value } => {
                write!(f, "{what}[{index}] is not finite: {value}")
            }
            InvariantViolation::NegativeWatts { what, index, value } => {
                write!(f, "{what}[{index}] is negative: {value}")
            }
        }
    }
}

/// Relative slack for the budget-hierarchy sum: floating-point
/// re-aggregation noise, not real over-commitment.
const BUDGET_EPS: f64 = 1e-9;

/// Tolerance below zero for "non-negative" watts.
const NEG_EPS: f64 = -1e-9;

/// Per-tick invariant checker over a [`Willow`] controller.
///
/// The audited application universe is fixed at construction (apps are
/// migrated, never created or destroyed). All working storage is reused
/// across [`Auditor::check`] calls, so a clean audit allocates nothing.
#[derive(Debug)]
pub struct Auditor {
    /// The application universe, sorted by id.
    expected: Vec<AppId>,
    /// Scratch: hosted copies seen per `expected` entry.
    counts: Vec<u32>,
    /// Server index hosted at each arena node, if the node is a leaf.
    server_of_node: Vec<Option<usize>>,
    /// Budget applied to each server at the previous audit.
    prev_tp: Vec<Watts>,
    /// Each server's watchdog miss count at the previous audit.
    prev_missed: Vec<u32>,
    /// Violations found by the most recent `check`.
    violations: Vec<InvariantViolation>,
    /// Panic on any violation (CI mode).
    panic_mode: bool,
    /// Violations across all checks so far.
    total: u64,
    /// Checks performed.
    checks: u64,
    tel: willow_telemetry::Counter,
}

impl Auditor {
    /// Build an auditor for `w`, fixing the app universe and seeding the
    /// tightening-only tracker from the current budgets.
    #[must_use]
    pub fn new(w: &Willow) -> Self {
        let mut expected: Vec<AppId> = w
            .servers()
            .iter()
            .flat_map(|s| s.apps.iter().map(|a| a.id))
            .collect();
        expected.sort_unstable();
        let counts = vec![0; expected.len()];
        let mut server_of_node = vec![None; w.tree().len()];
        for (si, s) in w.servers().iter().enumerate() {
            server_of_node[s.node.index()] = Some(si);
        }
        let prev_tp = w
            .servers()
            .iter()
            .map(|s| w.power().tp[s.node.index()])
            .collect();
        let prev_missed = w.watchdogs().iter().map(|wd| wd.missed).collect();
        Auditor {
            expected,
            counts,
            server_of_node,
            prev_tp,
            prev_missed,
            violations: Vec::new(),
            panic_mode: false,
            total: 0,
            checks: 0,
            tel: willow_telemetry::Counter::default(),
        }
    }

    /// Enable or disable panic-on-violation (CI mode): any violation found
    /// by a subsequent [`Auditor::check`] panics with the full list.
    #[must_use]
    pub fn panic_on_violation(mut self, on: bool) -> Self {
        self.panic_mode = on;
        self
    }

    /// Count violations on `registry` as
    /// `willow_audit_violations_total`.
    pub fn attach_telemetry(&mut self, registry: &willow_telemetry::TelemetryRegistry) {
        self.tel = registry.counter(
            "willow_audit_violations_total",
            "Runtime invariant violations detected by the auditor",
        );
    }

    /// Violations found across all checks so far.
    #[must_use]
    pub fn total_violations(&self) -> u64 {
        self.total
    }

    /// Checks performed so far.
    #[must_use]
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Re-synchronize the auditor with `w` after an online topology
    /// change (live-ops server add/remove): resize the node-to-server map
    /// to the new arena and seed the tightening-only tracker for newly
    /// added servers from their current budgets and watchdog state.
    /// Existing servers keep their history, so the tightening-only rule
    /// keeps policing across the change. Call this before
    /// [`Auditor::check`] on any tick whose report flagged
    /// `topology_changed`.
    pub fn resync(&mut self, w: &Willow) {
        self.server_of_node.clear();
        self.server_of_node.resize(w.tree().len(), None);
        for (si, s) in w.servers().iter().enumerate() {
            // A retired server's arena slot may have been reused by a
            // later-added server; only live servers own their node.
            if s.fence != crate::server::FenceState::Retired {
                self.server_of_node[s.node.index()] = Some(si);
            }
        }
        for si in self.prev_tp.len()..w.servers().len() {
            self.prev_tp
                .push(w.power().tp[w.servers()[si].node.index()]);
            self.prev_missed.push(w.watchdogs()[si].missed);
        }
    }

    /// Audit `w` against all four invariant families. Returns the
    /// violations found this check (empty on a healthy controller).
    ///
    /// # Panics
    /// Panics on any violation when [`Auditor::panic_on_violation`] is
    /// enabled.
    pub fn check(&mut self, w: &Willow) -> &[InvariantViolation] {
        self.violations.clear();
        self.checks += 1;

        // 1. App conservation.
        self.counts.iter_mut().for_each(|c| *c = 0);
        for (si, server) in w.servers().iter().enumerate() {
            if !server.active && !server.apps.is_empty() {
                self.violations
                    .push(InvariantViolation::SleepingServerHostsApps {
                        server: si,
                        apps: server.apps.len(),
                    });
            }
            for app in &server.apps {
                match self.expected.binary_search(&app.id) {
                    Ok(pos) => self.counts[pos] += 1,
                    Err(_) => self.violations.push(InvariantViolation::AppUnknown {
                        app: app.id,
                        server: si,
                    }),
                }
            }
        }
        for (pos, &count) in self.counts.iter().enumerate() {
            match count {
                1 => {}
                0 => self.violations.push(InvariantViolation::AppLost {
                    app: self.expected[pos],
                }),
                copies => self.violations.push(InvariantViolation::AppDuplicated {
                    app: self.expected[pos],
                    copies,
                }),
            }
        }

        // 2. Budget hierarchy: Σ child TP ≤ node TP at every interior
        // node. Leaves holding a stale directive (missed > 0) keep their
        // previously applied budget by design, which may legitimately
        // exceed their freshly allocated share — those are excluded here
        // and policed by the tightening-only rule below instead.
        let tree = w.tree();
        let power = w.power();
        let watchdogs = w.watchdogs();
        for node in tree.ids() {
            let children = tree.children(node);
            if children.is_empty() {
                continue;
            }
            let sum: f64 = children
                .iter()
                .filter(|c| {
                    self.server_of_node[c.index()].is_none_or(|si| watchdogs[si].missed == 0)
                })
                .map(|c| power.tp[c.index()].0)
                .sum();
            let budget = power.tp[node.index()].0;
            if sum > budget + BUDGET_EPS * budget.abs().max(1.0) {
                self.violations.push(InvariantViolation::BudgetOverflow {
                    node,
                    children: Watts(sum),
                    budget: Watts(budget),
                });
            }
        }

        // 3. Tightening-only while stale: no fresh directive since the
        // previous audit (misses were > 0 and have not been reset) means
        // the applied budget must not have grown.
        for (si, (server, wd)) in w.servers().iter().zip(watchdogs).enumerate() {
            // A retired server has no budget to police, and its `node`
            // field may alias a slot recycled by a later-added live server
            // — reading `tp` through it would police the wrong machine.
            if server.fence == crate::server::FenceState::Retired {
                continue;
            }
            let tp = power.tp[server.node.index()];
            let still_stale = self.prev_missed[si] > 0 && wd.missed >= self.prev_missed[si];
            if still_stale && tp.0 > self.prev_tp[si].0 + 1e-9 {
                self.violations
                    .push(InvariantViolation::LoosenedWhileStale {
                        server: si,
                        was: self.prev_tp[si],
                        now: tp,
                    });
            }
            self.prev_tp[si] = tp;
            self.prev_missed[si] = wd.missed;
        }

        // 4. Physical sanity of every power/temperature state vector.
        let mut scan = |what: &'static str, values: &mut dyn Iterator<Item = f64>| {
            for (i, v) in values.enumerate() {
                if !v.is_finite() {
                    self.violations.push(InvariantViolation::NonFinite {
                        what,
                        index: i,
                        value: v,
                    });
                } else if v < NEG_EPS {
                    self.violations.push(InvariantViolation::NegativeWatts {
                        what,
                        index: i,
                        value: v,
                    });
                }
            }
        };
        scan("tp", &mut power.tp.iter().map(|v| v.0));
        scan("cp", &mut power.cp.iter().map(|v| v.0));
        scan("cap", &mut power.cap.iter().map(|v| v.0));
        scan("local_cp", &mut w.local_demands().iter().map(|v| v.0));
        for (si, t) in w.accepted_temps().iter().enumerate() {
            if !t.0.is_finite() {
                self.violations.push(InvariantViolation::NonFinite {
                    what: "accepted_temp",
                    index: si,
                    value: t.0,
                });
            }
        }

        self.total += self.violations.len() as u64;
        self.tel.add(self.violations.len() as u64);
        assert!(
            !self.panic_mode || self.violations.is_empty(),
            "invariant violations at tick {}: {:?}",
            w.tick_count(),
            self.violations
        );
        &self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ControllerConfig;
    use crate::server::ServerSpec;
    use crate::Disturbances;
    use willow_thermal::units::Celsius;
    use willow_topology::Tree;
    use willow_workload::app::{Application, SIM_APP_CLASSES};

    fn build(apps_per_server: usize) -> (Willow, usize) {
        let tree = Tree::paper_fig3();
        let leaves: Vec<_> = tree.leaves().collect();
        let n_apps = leaves.len() * apps_per_server;
        let specs: Vec<ServerSpec> = leaves
            .iter()
            .enumerate()
            .map(|(i, &leaf)| {
                let apps: Vec<Application> = (0..apps_per_server)
                    .map(|k| {
                        let class = (i + k) % SIM_APP_CLASSES.len();
                        Application::new(
                            AppId((i * apps_per_server + k) as u32),
                            class,
                            &SIM_APP_CLASSES[class],
                        )
                    })
                    .collect();
                ServerSpec::simulation_default(leaf).with_apps(apps)
            })
            .collect();
        let w = Willow::new(tree, specs, ControllerConfig::default()).unwrap();
        (w, n_apps)
    }

    /// Faulted disturbances exercising loss, sensor overrides, and failed
    /// migrations — the auditor must stay quiet through all of it.
    fn disturb(t: u64, n: usize) -> Disturbances {
        use crate::disturbance::MigrationOutcome;
        let mut d = Disturbances {
            crashed: vec![false; n],
            report_lost: vec![false; n],
            directive_lost: vec![false; n],
            sensor_override: vec![None; n],
            sensor_offset: vec![0.0; n],
            migration_outcomes: Vec::new(),
        };
        d.report_lost[(t as usize) % n] = true;
        d.directive_lost[(t as usize * 7) % n] = true;
        d.directive_lost[(t as usize * 7 + 1) % n] = true;
        if t.is_multiple_of(4) {
            d.sensor_override[3] = Some(Celsius(95.0));
        }
        d.migration_outcomes = (0..8)
            .map(|i| match (t + i) % 3 {
                0 => MigrationOutcome::Reject,
                1 => MigrationOutcome::Abort,
                _ => MigrationOutcome::Success,
            })
            .collect();
        d
    }

    #[test]
    fn faulted_run_stays_clean() {
        let (mut w, n_apps) = build(2);
        let n = w.servers().len();
        let mut auditor = Auditor::new(&w).panic_on_violation(true);
        let mut report = crate::migration::TickReport::default();
        for t in 0..240u64 {
            let demands: Vec<Watts> = (0..n_apps)
                .map(|i| Watts(15.0 + ((i as u64 + t) % 9) as f64 * 25.0))
                .collect();
            let supply = if t % 11 < 6 {
                Watts(9000.0)
            } else {
                Watts(3500.0)
            };
            let d = disturb(t, n);
            if (80..100).contains(&t) {
                // Controller outage mid-run: the auditor must hold
                // open-loop too.
                w.step_open_loop(&demands, &d, &mut report);
            } else {
                w.step_into(&demands, supply, &d, &mut report);
            }
            assert!(auditor.check(&w).is_empty(), "tick {t}");
        }
        assert_eq!(auditor.total_violations(), 0);
        assert_eq!(auditor.checks(), 240);
    }

    #[test]
    fn recovery_stays_clean() {
        let (mut w, n_apps) = build(2);
        let n = w.servers().len();
        let mut auditor = Auditor::new(&w);
        let mut report = crate::migration::TickReport::default();
        let demands: Vec<Watts> = (0..n_apps)
            .map(|i| Watts(20.0 + (i % 5) as f64 * 20.0))
            .collect();
        for _ in 0..20 {
            w.step_into(
                &demands,
                Watts(4000.0),
                &Disturbances::default(),
                &mut report,
            );
            assert!(auditor.check(&w).is_empty());
        }
        let ckpt = w.snapshot();
        for t in 20..40 {
            let d = disturb(t, n);
            w.step_open_loop(&demands, &d, &mut report);
            assert!(auditor.check(&w).is_empty());
        }
        let mut w = Willow::recover(ckpt, &w).unwrap();
        for _ in 0..40 {
            w.step_into(
                &demands,
                Watts(4000.0),
                &Disturbances::default(),
                &mut report,
            );
            assert!(auditor.check(&w).is_empty(), "post-recovery");
        }
        assert_eq!(auditor.total_violations(), 0);
    }
}
