//! A frozen copy of the pre-optimization controller, kept verbatim as the
//! ground truth for the differential equivalence test: the scratch-workspace
//! `Willow::step_with` must produce bit-identical `TickReport`s and budgets
//! to this implementation on any input. Test-only; never ships.

use crate::config::{AllocationPolicy, ControllerConfig, ReducedTargetRule};
use crate::controller::{ControlStats, WillowError};
use crate::disturbance::{Disturbances, MigrationOutcome};
use crate::migration::{MigrationReason, MigrationRecord, TickReport};
use crate::server::{ServerSpec, ServerState};
use crate::state::PowerState;
use std::collections::HashMap;
use willow_binpack::Packer;
use willow_network::Fabric;
use willow_power::allocation::allocate_proportional;
use willow_thermal::limit::power_limit;
use willow_thermal::model::step_temperature;
use willow_thermal::units::{Celsius, Watts};
use willow_topology::{NodeId, Tree};
use willow_workload::app::AppId;

/// A deficit parcel traveling up the hierarchy: one application that must
/// leave its server.
#[derive(Debug, Clone)]
struct DeficitItem {
    server: usize,
    app: AppId,
    demand: Watts,
    reason: MigrationReason,
}

/// Per-server stale-directive watchdog state (paper-adjacent defense: a
/// leaf that keeps missing its budget directive falls back to a
/// conservative local cap rather than running open-loop forever).
#[derive(Debug, Clone, Copy, Default)]
struct Watchdog {
    /// Consecutive supply ticks whose budget directive never arrived.
    missed: u32,
    /// Whether the conservative fallback cap is currently engaged.
    tripped: bool,
}

/// Exponential retry backoff for an app whose migration failed.
#[derive(Debug, Clone, Copy)]
struct Backoff {
    /// Failed attempts so far.
    failures: u32,
    /// Earliest tick at which another attempt may be made.
    retry_at: u64,
}

/// Fault and defense events observed during the current period.
#[derive(Debug, Clone, Copy, Default)]
struct FaultCounters {
    reports_lost: usize,
    directives_lost: usize,
    migration_rejects: usize,
    migration_aborts: usize,
    migration_retries: usize,
    watchdog_trips: usize,
    sensor_rejections: usize,
}

/// The ReferenceWillow control system. See the crate docs for the model.
pub struct ReferenceWillow {
    tree: Tree,
    config: ControllerConfig,
    servers: Vec<ServerState>,
    /// Arena index → server index (None for interior nodes).
    leaf_server: Vec<Option<usize>>,
    power: PowerState,
    fabric: Fabric,
    tick: u64,
    /// For each app: the server it last migrated *from* and when. Ping-pong
    /// is defined as the paper does — "migrates demand from server A to B
    /// and then immediately from B to A" — i.e. a return to the previous
    /// host within the `Δ_f` window.
    last_move: HashMap<AppId, (NodeId, u64)>,
    /// Demand shed last period (drives wake-on-deficit).
    last_dropped: Watts,
    /// Cumulative operation counters.
    stats: ControlStats,
    /// Each leaf's *own* view of its smoothed demand, indexed like
    /// `power.cp`. Identical to `power.cp` in fault-free operation; under
    /// report loss `power.cp` keeps the hierarchy's stale view while this
    /// stays current — physics and local deficit detection use this.
    local_cp: Vec<Watts>,
    /// Stale-directive watchdog per server.
    watchdog: Vec<Watchdog>,
    /// Last temperature reading per server that passed the plausibility
    /// filter; caps and predictions are computed from this, never from a
    /// raw (possibly faulted) sensor.
    accepted_temp: Vec<Celsius>,
    /// Retry backoff for apps whose migrations recently failed.
    backoff: HashMap<AppId, Backoff>,
    /// Disturbances being applied to the period currently in progress.
    disturb: Disturbances,
    /// Migration attempts made so far this period (indexes into the
    /// pre-rolled outcome list).
    mig_attempts: usize,
    /// Fault/defense events observed this period.
    counters: FaultCounters,
}

impl ReferenceWillow {
    /// Build a controller for `tree` with one [`ServerSpec`] per leaf.
    pub fn new(
        tree: Tree,
        specs: Vec<ServerSpec>,
        config: ControllerConfig,
    ) -> Result<Self, WillowError> {
        config.validate().map_err(WillowError::Config)?;
        let leaves: Vec<NodeId> = tree.leaves().collect();
        if specs.len() != leaves.len() {
            return Err(WillowError::LeafCoverage {
                leaves: leaves.len(),
                specs: specs.len(),
            });
        }
        let mut leaf_server = vec![None; tree.len()];
        let mut servers = Vec::with_capacity(specs.len());
        let mut seen_apps = HashMap::new();
        for spec in &specs {
            if !tree.is_leaf(spec.node) {
                return Err(WillowError::NotALeaf(spec.node));
            }
            if leaf_server[spec.node.index()].is_some() {
                return Err(WillowError::DuplicateLeaf(spec.node));
            }
            for app in &spec.apps {
                if seen_apps.insert(app.id, spec.node).is_some() {
                    return Err(WillowError::DuplicateApp(app.id));
                }
            }
            leaf_server[spec.node.index()] = Some(servers.len());
            servers.push(ServerState::from_spec_with_smoother(
                spec,
                crate::server::DemandSmoother::new(config.smoother, config.alpha),
            ));
        }
        let power = PowerState::new(&tree);
        let fabric = Fabric::new(&tree);
        let accepted_temp = servers.iter().map(|s| s.thermal.temperature()).collect();
        let watchdog = vec![Watchdog::default(); servers.len()];
        let local_cp = vec![Watts::ZERO; tree.len()];
        Ok(ReferenceWillow {
            tree,
            config,
            servers,
            leaf_server,
            power,
            fabric,
            tick: 0,
            last_move: HashMap::new(),
            last_dropped: Watts::ZERO,
            stats: ControlStats::default(),
            local_cp,
            watchdog,
            accepted_temp,
            backoff: HashMap::new(),
            disturb: Disturbances::default(),
            mig_attempts: 0,
            counters: FaultCounters::default(),
        })
    }

    /// The PMU tree.
    #[must_use]
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Immutable view of server states (indexed by server order).
    #[must_use]
    pub fn servers(&self) -> &[ServerState] {
        &self.servers
    }

    /// The switch fabric's traffic counters for the current period.
    #[must_use]
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Current power state (CP/TP/caps per node).
    #[must_use]
    pub fn power(&self) -> &PowerState {
        &self.power
    }

    /// Cumulative operation counters since construction.
    #[must_use]
    pub fn stats(&self) -> ControlStats {
        self.stats
    }

    /// The demand-period counter (number of completed `step` calls).
    #[must_use]
    pub fn tick_count(&self) -> u64 {
        self.tick
    }

    /// Ping-pong bookkeeping as a serializable list, sorted by app id.
    #[must_use]
    pub fn last_moves(&self) -> Vec<(AppId, NodeId, u64)> {
        let mut out: Vec<(AppId, NodeId, u64)> = self
            .last_move
            .iter()
            .map(|(&app, &(from, t))| (app, from, t))
            .collect();
        out.sort_by_key(|(app, _, _)| *app);
        out
    }

    /// Demand shed in the last completed period.
    #[must_use]
    pub fn last_dropped(&self) -> Watts {
        self.last_dropped
    }

    /// Rebuild a controller from previously captured parts (the
    /// checkpoint/restore path — see `crate::snapshot`). Validates the
    /// config and the leaf coverage of the server states.
    pub(crate) fn from_parts(
        tree: Tree,
        config: ControllerConfig,
        servers: Vec<ServerState>,
        power: PowerState,
        tick: u64,
        last_moves: Vec<(AppId, NodeId, u64)>,
        last_dropped: Watts,
    ) -> Result<ReferenceWillow, WillowError> {
        config.validate().map_err(WillowError::Config)?;
        let leaves = tree.leaves().count();
        if servers.len() != leaves {
            return Err(WillowError::LeafCoverage {
                leaves,
                specs: servers.len(),
            });
        }
        let mut leaf_server = vec![None; tree.len()];
        for (si, server) in servers.iter().enumerate() {
            if !tree.is_leaf(server.node) {
                return Err(WillowError::NotALeaf(server.node));
            }
            if leaf_server[server.node.index()].is_some() {
                return Err(WillowError::DuplicateLeaf(server.node));
            }
            leaf_server[server.node.index()] = Some(si);
        }
        let fabric = Fabric::new(&tree);
        let accepted_temp = servers.iter().map(|s| s.thermal.temperature()).collect();
        let watchdog = vec![Watchdog::default(); servers.len()];
        let local_cp = power.cp.clone();
        Ok(ReferenceWillow {
            tree,
            config,
            servers,
            leaf_server,
            power,
            fabric,
            tick,
            last_move: last_moves
                .into_iter()
                .map(|(app, from, t)| (app, (from, t)))
                .collect(),
            last_dropped,
            stats: ControlStats::default(),
            local_cp,
            watchdog,
            accepted_temp,
            backoff: HashMap::new(),
            disturb: Disturbances::default(),
            mig_attempts: 0,
            counters: FaultCounters::default(),
        })
    }

    /// Server index hosting `app`, if any.
    #[must_use]
    pub fn locate_app(&self, app: AppId) -> Option<usize> {
        self.servers.iter().position(|s| s.find_app(app).is_some())
    }

    fn packer(&self) -> Box<dyn Packer> {
        willow_binpack::packer_for(self.config.packer)
    }

    /// Effective packing size of a demand parcel: the moved demand plus the
    /// temporary cost it charges the target while migrating.
    fn effective_size(&self, demand: Watts) -> f64 {
        (demand + self.config.cost_model.node_cost(demand)).0
    }

    /// Drive one demand period. `app_demand` is indexed by `AppId.0` and
    /// gives each application's raw power demand this period; `supply` is
    /// the data center's total power budget (used on supply ticks).
    ///
    /// Equivalent to [`ReferenceWillow::step_with`] with no disturbances.
    ///
    /// # Panics
    /// Panics if `app_demand` does not cover every hosted application's id.
    pub fn step(&mut self, app_demand: &[Watts], supply: Watts) -> TickReport {
        self.step_with(app_demand, supply, &Disturbances::default())
    }

    /// Drive one demand period under injected faults (see
    /// [`crate::disturbance`]). With the default (empty) [`Disturbances`]
    /// this is exactly [`ReferenceWillow::step`] — the fault machinery changes
    /// nothing about fault-free trajectories.
    ///
    /// # Panics
    /// Panics if `app_demand` does not cover every hosted application's id.
    pub fn step_with(
        &mut self,
        app_demand: &[Watts],
        supply: Watts,
        disturb: &Disturbances,
    ) -> TickReport {
        self.disturb = disturb.clone();
        self.mig_attempts = 0;
        self.counters = FaultCounters::default();
        let tick = self.tick;
        let supply_tick = tick.is_multiple_of(u64::from(self.config.eta1));
        let consolidation_tick = tick.is_multiple_of(u64::from(self.config.eta2));
        let mut report = TickReport {
            tick,
            supply_tick,
            consolidation_tick,
            ..TickReport::default()
        };
        self.fabric.reset_epoch();

        // ------------------------------------------------ 1. measurement
        self.measure(app_demand);
        // Upward demand reports: one message per tree link.
        report.control_messages += self.tree.len() - 1;
        self.stats.messages += (self.tree.len() - 1) as u64;

        // ------------------------------------------- 2. supply adaptation
        if supply_tick {
            self.supply_adaptation(supply);
            // Downward budget directives: one message per tree link.
            report.control_messages += self.tree.len() - 1;
            self.stats.messages += (self.tree.len() - 1) as u64;
        }

        // ------------------------------------------- 3. demand adaptation
        let migrations = self.demand_adaptation(tick);
        report.migrations.extend(migrations);

        // --------------------------------------------- 4. consolidation
        if consolidation_tick {
            let (migs, slept) = self.consolidate(tick);
            report.migrations.extend(migs);
            report.slept = slept;
            if self.config.wake_on_deficit && self.last_dropped.0 > 0.0 {
                report.woken = self.wake_servers(self.last_dropped, tick);
            }
        }

        // ------------------------------------------------- 5. physics
        self.power.aggregate_demands(&self.tree);
        let mut dropped = Watts::ZERO;
        for (si, server) in self.servers.iter_mut().enumerate() {
            let leaf = server.node.index();
            let budget = self.power.tp[leaf];
            // The server draws against its *own* demand view: report loss
            // fools the hierarchy, not the machine itself.
            let demand = if server.active {
                self.local_cp[leaf]
            } else {
                Watts::ZERO
            };
            let drawn = demand.min(budget);
            let shortfall = (demand - budget).non_negative();
            dropped += shortfall;
            if shortfall.0 > 0.0 {
                // Degraded operation: attribute the shed demand to QoS
                // classes, lowest priority first (§IV-E / §VI).
                let plan =
                    crate::shedding::shed_by_priority(&server.apps, &server.app_demand, shortfall);
                for (acc, class_shed) in report.shed_by_priority.iter_mut().zip(plan.by_class) {
                    *acc += class_shed;
                }
            }
            server.thermal.advance(drawn, self.config.delta_d);
            // Sensor plausibility filter: accept the (possibly faulted)
            // reading only if it is within `sensor_slack` of what the RC
            // model predicts from the last accepted temperature under the
            // power actually drawn; otherwise keep running on the model.
            let measured = self.disturb.measured_temp(si, server.thermal.temperature());
            let predicted = step_temperature(
                server.thermal.params(),
                self.accepted_temp[si],
                server.thermal.ambient(),
                drawn,
                self.config.delta_d,
            );
            self.accepted_temp[si] =
                if (measured.0 - predicted.0).abs() <= self.config.robustness.sensor_slack {
                    measured
                } else {
                    self.counters.sensor_rejections += 1;
                    predicted
                };
            // Indirect network impact: query traffic follows the workload.
            self.fabric.record_query(
                &self.tree,
                server.node,
                drawn.0 * self.config.query_traffic_per_watt,
            );
            report.server_power.push(drawn);
            report.server_budget.push(budget);
            report.server_temp.push(server.thermal.temperature());
            report.server_active.push(server.active);
        }
        report.dropped_demand = dropped;
        self.last_dropped = dropped;
        for level in 0..=self.tree.height() {
            report
                .imbalance
                .push(self.power.level_imbalance(&self.tree, level));
        }

        report.reports_lost = self.counters.reports_lost;
        report.directives_lost = self.counters.directives_lost;
        report.migration_rejects = self.counters.migration_rejects;
        report.migration_aborts = self.counters.migration_aborts;
        report.migration_retries = self.counters.migration_retries;
        report.watchdog_trips = self.counters.watchdog_trips;
        report.sensor_rejections = self.counters.sensor_rejections;
        report.fallback_servers = self.watchdog.iter().filter(|w| w.tripped).count();

        self.tick += 1;
        report
    }

    /// Smooth raw demands into leaf `CP` values and aggregate upward. A
    /// server whose report is lost keeps running on its own fresh view
    /// (`local_cp`) while the hierarchy keeps the stale `power.cp` entry.
    fn measure(&mut self, app_demand: &[Watts]) {
        for (si, server) in self.servers.iter_mut().enumerate() {
            if server.active {
                for (i, app) in server.apps.iter().enumerate() {
                    let idx = app.id.0 as usize;
                    assert!(
                        idx < app_demand.len(),
                        "demand vector too short for {}",
                        app.id
                    );
                    server.app_demand[i] = app_demand[idx];
                }
                let raw = server.raw_demand();
                let smoothed = server.smoother.observe(raw);
                self.local_cp[server.node.index()] = smoothed;
                if self.disturb.report_lost(si) {
                    self.counters.reports_lost += 1;
                } else {
                    self.power.cp[server.node.index()] = smoothed;
                }
            } else {
                self.local_cp[server.node.index()] = Watts::ZERO;
                self.power.cp[server.node.index()] = Watts::ZERO;
            }
            // Migration costs are charged for exactly one period.
            server.pending_cost = Watts::ZERO;
        }
        self.power.aggregate_demands(&self.tree);
    }

    /// Refresh hard caps from the thermal model and divide the supply
    /// top-down proportional to demand (§IV-D).
    fn supply_adaptation(&mut self, supply: Watts) {
        let window = self.config.delta_s();
        for (si, server) in self.servers.iter().enumerate() {
            // Sleeping servers present their wake-up headroom; they are at
            // (or cooling toward) ambient, so this is near their rating.
            // Caps derive from the *accepted* temperature — the reading
            // that passed the plausibility filter — never a raw sensor, so
            // a stuck or noisy sensor cannot zero out a healthy server.
            let cap = match self.config.thermal_estimate {
                crate::config::ThermalEstimate::WindowPrediction => power_limit(
                    server.thermal.params(),
                    self.accepted_temp[si],
                    server.thermal.ambient(),
                    server.thermal.limit(),
                    window,
                )
                .clamp(Watts::ZERO, server.thermal.rating()),
                crate::config::ThermalEstimate::NaiveThrottle => {
                    if self.accepted_temp[si].0 > server.thermal.limit().0 + 1e-9 {
                        Watts::ZERO
                    } else {
                        server.thermal.rating()
                    }
                }
            };
            self.power.cap[server.node.index()] = cap;
        }
        self.power.aggregate_caps(&self.tree);

        self.power.tp_old.copy_from_slice(&self.power.tp);
        let root = self.tree.root();
        self.power.tp[root.index()] = supply.min(self.power.cap[root.index()]);
        for level in (1..=self.tree.height()).rev() {
            for &node in self.tree.nodes_at_level(level) {
                let children = self.tree.children(node);
                let caps: Vec<Watts> = children.iter().map(|c| self.power.cap[c.index()]).collect();
                // The allocation "demand" weights depend on the policy.
                let weights: Vec<Watts> = match self.config.allocation {
                    AllocationPolicy::ProportionalToDemand => {
                        children.iter().map(|c| self.power.cp[c.index()]).collect()
                    }
                    AllocationPolicy::EqualShare => children.iter().map(|_| Watts(1.0)).collect(),
                    AllocationPolicy::ProportionalToCapacity => caps.clone(),
                };
                let budgets = allocate_proportional(self.power.tp[node.index()], &weights, &caps)
                    .expect("validated inputs");
                for (c, b) in children.iter().zip(budgets) {
                    self.power.tp[c.index()] = b;
                }
            }
        }

        // Stale-directive watchdog. A leaf whose directive is lost never
        // sees the freshly allocated budget: it keeps its previously
        // applied one, clipped by its locally known thermal cap — i.e. the
        // effective budget can only *tighten*, never loosen, without a
        // fresh directive. After `watchdog_threshold` consecutive misses
        // the leaf self-imposes a conservative fallback cap (a fraction of
        // its rating) until a directive gets through again.
        for (si, server) in self.servers.iter().enumerate() {
            let leaf = server.node.index();
            if self.disturb.directive_lost(si) {
                self.counters.directives_lost += 1;
                let wd = &mut self.watchdog[si];
                wd.missed += 1;
                if !wd.tripped && wd.missed >= self.config.robustness.watchdog_threshold {
                    wd.tripped = true;
                    self.counters.watchdog_trips += 1;
                }
                let mut fallback = self.power.tp_old[leaf].min(self.power.cap[leaf]);
                if wd.tripped {
                    let cap_w =
                        server.thermal.rating().0 * self.config.robustness.watchdog_cap_fraction;
                    fallback = fallback.min(Watts(cap_w));
                }
                self.power.tp[leaf] = fallback;
            } else {
                self.watchdog[si] = Watchdog::default();
            }
        }

        // Budget-reduction flags for the unidirectional target rule (after
        // the watchdog, so degraded leaves read as reduced targets).
        for id in self.tree.ids() {
            let i = id.index();
            let reduced = match self.config.reduced_rule {
                ReducedTargetRule::Off => false,
                ReducedTargetRule::Strict => self.power.tp[i].0 < self.power.tp_old[i].0 - 1e-9,
                ReducedTargetRule::Disproportionate => {
                    let old = self.power.tp_old[i].0;
                    let new = self.power.tp[i].0;
                    if old <= 0.0 || new >= old {
                        false
                    } else {
                        match self.tree.parent(id) {
                            None => false, // global events never flag the root
                            Some(p) => {
                                let p_old = self.power.tp_old[p.index()].0;
                                let p_new = self.power.tp[p.index()].0;
                                let parent_ratio = if p_old > 0.0 { p_new / p_old } else { 1.0 };
                                new / old < parent_ratio - 1e-6
                            }
                        }
                    }
                }
            };
            self.power.reduced[i] = reduced;
        }
    }

    /// True if `leaf` may receive migrations: active, not crashed, and
    /// neither it nor any ancestor was flagged as budget-reduced (§IV-E
    /// final rule).
    fn target_eligible(&self, leaf: NodeId) -> bool {
        let Some(si) = self.leaf_server[leaf.index()] else {
            return false;
        };
        if !self.servers[si].active || self.disturb.crashed(si) {
            return false;
        }
        if self.power.reduced[leaf.index()] {
            return false;
        }
        !self
            .tree
            .ancestors(leaf)
            .any(|a| self.power.reduced[a.index()])
    }

    /// Remaining surplus a target server can absorb (margin already
    /// deducted).
    fn bin_capacity(&self, leaf: NodeId) -> Watts {
        (self.power.tp[leaf.index()] - self.power.cp[leaf.index()] - self.config.margin)
            .non_negative()
    }

    /// Bottom-up demand-side adaptation: local packing first, leftovers up.
    fn demand_adaptation(&mut self, tick: u64) -> Vec<MigrationRecord> {
        let mut records = Vec::new();

        // Collect deficit items at the leaves.
        let mut pending = self.collect_deficit_items();
        if pending.is_empty() {
            return records;
        }

        // Process levels bottom-up; at each level, each PMU node packs the
        // pending items originating in its subtree into surpluses in its
        // subtree (excluding the origin's child-subtree, already tried).
        for level in 1..=self.tree.height() {
            if pending.is_empty() {
                break;
            }
            let nodes: Vec<NodeId> = self.tree.nodes_at_level(level).to_vec();
            let mut still_pending = Vec::new();
            for pmu in nodes {
                let scope = self.tree.subtree_leaves(pmu);
                // Items whose origin server lies under this PMU.
                let (mine, other): (Vec<DeficitItem>, Vec<DeficitItem>) =
                    std::mem::take(&mut pending).into_iter().partition(|item| {
                        scope.binary_search(&self.servers[item.server].node).is_ok()
                    });
                pending = other;
                if mine.is_empty() {
                    continue;
                }
                // Group items by the child of `pmu` containing their origin
                // (that child's subtree was already tried at level-1).
                let mut groups: HashMap<NodeId, Vec<DeficitItem>> = HashMap::new();
                for item in mine {
                    let child = self.child_containing(pmu, self.servers[item.server].node);
                    groups.entry(child).or_default().push(item);
                }
                let mut group_keys: Vec<NodeId> = groups.keys().copied().collect();
                group_keys.sort_unstable();
                for child in group_keys {
                    let items = groups.remove(&child).expect("key exists");
                    let excluded = self.tree.subtree_leaves(child);
                    let leftovers =
                        self.pack_and_execute(&scope, &excluded, items, tick, &mut records);
                    still_pending.extend(leftovers);
                }
            }
            pending = still_pending;
        }
        // Items left after the root instance stay on their servers; their
        // demand above budget is shed in the physics phase.
        records
    }

    /// Deficit items: for every active server over budget, pick the largest
    /// apps until the remainder fits under `TP − margin` (cost-adjusted).
    fn collect_deficit_items(&self) -> Vec<DeficitItem> {
        let mut items = Vec::new();
        let overhead = self.config.cost_model.node_overhead;
        for (si, server) in self.servers.iter().enumerate() {
            if !server.active {
                continue;
            }
            let leaf = server.node.index();
            // Deficit detection is local: the server compares its own
            // fresh demand view against its budget, regardless of what the
            // hierarchy believes.
            let cp = self.local_cp[leaf];
            let tp = self.power.tp[leaf];
            let excess = (cp - tp + self.config.margin).non_negative();
            if excess.0 <= 1e-9 {
                continue;
            }
            // Shedding `shed` relieves `shed·(1 − overhead)` net of the
            // temporary cost charged back to the source.
            let target_shed = if overhead < 1.0 {
                excess.0 / (1.0 - overhead)
            } else {
                excess.0
            };
            // Settled apps first (Property 4: a demand that migrated stays
            // put for ≥ Δ_f whenever possible), then largest-first to
            // minimize the number of migrations.
            let mut order: Vec<usize> = (0..server.apps.len()).collect();
            let tick = self.tick;
            order.sort_by(|&a, &b| {
                let recent = |i: usize| {
                    self.last_move
                        .get(&server.apps[i].id)
                        .is_some_and(|&(_, t)| tick.saturating_sub(t) < self.config.pingpong_window)
                };
                recent(a)
                    .cmp(&recent(b)) // settled (false) before recent (true)
                    .then(server.app_demand[b].0.total_cmp(&server.app_demand[a].0))
                    .then(a.cmp(&b))
            });
            let mut shed = 0.0;
            for idx in order {
                if shed >= target_shed {
                    break;
                }
                let demand = server.app_demand[idx];
                if demand.0 <= 0.0 {
                    continue;
                }
                shed += demand.0;
                items.push(DeficitItem {
                    server: si,
                    app: server.apps[idx].id,
                    demand,
                    reason: MigrationReason::Demand,
                });
            }
        }
        items
    }

    /// The child of `pmu` whose subtree contains `leaf`.
    fn child_containing(&self, pmu: NodeId, leaf: NodeId) -> NodeId {
        if pmu == leaf {
            return leaf;
        }
        let mut n = leaf;
        loop {
            match self.tree.parent(n) {
                Some(p) if p == pmu => return n,
                Some(p) => n = p,
                None => unreachable!("leaf must lie under pmu"),
            }
        }
    }

    /// Pack `items` into eligible surpluses among `scope` leaves minus
    /// `excluded` leaves; execute the migrations that fit; return leftovers.
    fn pack_and_execute(
        &mut self,
        scope: &[NodeId],
        excluded: &[NodeId],
        items: Vec<DeficitItem>,
        tick: u64,
        records: &mut Vec<MigrationRecord>,
    ) -> Vec<DeficitItem> {
        // Apps in retry backoff after a failed migration sit this round
        // out entirely (they go straight to the leftovers).
        let (items, mut leftovers): (Vec<DeficitItem>, Vec<DeficitItem>) = items
            .into_iter()
            .partition(|item| !self.in_backoff(item.app, tick));
        let bins_nodes: Vec<NodeId> = scope
            .iter()
            .copied()
            .filter(|leaf| excluded.binary_search(leaf).is_err())
            .filter(|&leaf| self.target_eligible(leaf))
            .collect();
        if bins_nodes.is_empty() {
            leftovers.extend(items);
            return leftovers;
        }
        let bin_caps: Vec<f64> = bins_nodes.iter().map(|&l| self.bin_capacity(l).0).collect();
        let sizes: Vec<f64> = items
            .iter()
            .map(|it| self.effective_size(it.demand))
            .collect();
        self.stats.packing_instances += 1;
        self.stats.items_offered += sizes.len() as u64;
        self.stats.bins_offered += bin_caps.len() as u64;
        let packing = self.packer().pack(&sizes, &bin_caps);

        for (i, item) in items.into_iter().enumerate() {
            match packing.assignment[i] {
                Some(b) => {
                    let target_leaf = bins_nodes[b];
                    // Property 4 / ping-pong avoidance: never bounce an app
                    // straight back to the host it recently left — defer it
                    // to the next level (other bins) or shed it instead.
                    if self.would_pingpong(item.app, target_leaf, tick)
                        || !self.attempt_migration(&item, target_leaf, tick, records)
                    {
                        leftovers.push(item);
                    }
                }
                None => leftovers.push(item),
            }
        }
        leftovers
    }

    /// True if placing `app` on `target` now would return it to the host it
    /// left within the ping-pong window `Δ_f`.
    fn would_pingpong(&self, app: AppId, target: NodeId, tick: u64) -> bool {
        self.last_move.get(&app).is_some_and(|&(prev_from, t)| {
            target == prev_from && tick.saturating_sub(t) < self.config.pingpong_window
        })
    }

    /// Is `app` still waiting out its retry backoff at `tick`?
    fn in_backoff(&self, app: AppId, tick: u64) -> bool {
        self.backoff.get(&app).is_some_and(|b| tick < b.retry_at)
    }

    /// Record a failed migration attempt for `app` and schedule its next
    /// eligible attempt with exponential backoff.
    fn register_failure(&mut self, app: AppId, tick: u64) {
        let rb = self.config.robustness;
        let entry = self.backoff.entry(app).or_insert(Backoff {
            failures: 0,
            retry_at: 0,
        });
        entry.failures += 1;
        let exp = (entry.failures - 1).min(rb.retry_cap);
        let delay = rb.retry_base.saturating_mul(1u64 << exp);
        entry.retry_at = tick.saturating_add(delay);
    }

    /// Try to migrate `item` to `target_leaf`, consuming the next
    /// pre-rolled outcome. On `Success` the move happens (and a cleared
    /// backoff counts as a successful retry); on `Reject` nothing is
    /// charged; on `Abort` the copy work already happened — both end nodes
    /// pay the temporary cost and the fabric carried the traffic — but the
    /// app stays at the source with its accounting restored. Both failure
    /// modes enter the app into retry backoff. Returns whether the app
    /// moved.
    fn attempt_migration(
        &mut self,
        item: &DeficitItem,
        target_leaf: NodeId,
        tick: u64,
        records: &mut Vec<MigrationRecord>,
    ) -> bool {
        let attempt = self.mig_attempts;
        self.mig_attempts += 1;
        match self.disturb.migration_outcome(attempt) {
            MigrationOutcome::Success => {
                if self.backoff.remove(&item.app).is_some() {
                    self.counters.migration_retries += 1;
                }
                self.execute_migration(item.clone(), target_leaf, tick, records);
                true
            }
            MigrationOutcome::Reject => {
                self.counters.migration_rejects += 1;
                self.register_failure(item.app, tick);
                false
            }
            MigrationOutcome::Abort => {
                self.counters.migration_aborts += 1;
                let src_leaf = self.servers[item.server].node;
                let tgt_idx = self.leaf_server[target_leaf.index()].expect("target is a server");
                let local = self.tree.are_siblings(src_leaf, target_leaf);
                let cost = self.config.cost_model.end_node_cost(item.demand, local);
                self.servers[item.server].pending_cost += cost;
                self.servers[tgt_idx].pending_cost += cost;
                self.power.cp[src_leaf.index()] += cost;
                self.power.cp[target_leaf.index()] += cost;
                self.local_cp[src_leaf.index()] += cost;
                self.local_cp[target_leaf.index()] += cost;
                let units = self.config.cost_model.traffic_units(item.demand);
                self.fabric
                    .record_migration(&self.tree, src_leaf, target_leaf, units);
                self.register_failure(item.app, tick);
                false
            }
        }
    }

    /// Physically move an app, charge costs, record traffic and stats.
    fn execute_migration(
        &mut self,
        item: DeficitItem,
        target_leaf: NodeId,
        tick: u64,
        records: &mut Vec<MigrationRecord>,
    ) {
        let src_idx = item.server;
        let tgt_idx = self.leaf_server[target_leaf.index()].expect("target is a server leaf");
        debug_assert_ne!(src_idx, tgt_idx, "cannot migrate to self");
        let src_leaf = self.servers[src_idx].node;

        let app_pos = self.servers[src_idx]
            .find_app(item.app)
            .expect("item's app still hosted at source");
        let (app, demand) = self.servers[src_idx].take_app(app_pos);
        self.servers[tgt_idx].host_app(app, demand);

        // Temporary cost demand on both ends (§IV-E), charged next period;
        // non-local moves additionally pay the IP-reconfiguration charge.
        let local = self.tree.are_siblings(src_leaf, target_leaf);
        let cost = self.config.cost_model.end_node_cost(demand, local);
        self.servers[src_idx].pending_cost += cost;
        self.servers[tgt_idx].pending_cost += cost;

        // Keep leaf CPs current so later packing sees updated surpluses.
        self.power.cp[src_leaf.index()] =
            (self.power.cp[src_leaf.index()] - demand).non_negative() + cost;
        self.power.cp[target_leaf.index()] += demand + cost;
        self.local_cp[src_leaf.index()] =
            (self.local_cp[src_leaf.index()] - demand).non_negative() + cost;
        self.local_cp[target_leaf.index()] += demand + cost;

        // Fabric accounting.
        let units = self.config.cost_model.traffic_units(demand);
        self.fabric
            .record_migration(&self.tree, src_leaf, target_leaf, units);

        let hops = self.tree.path_len(src_leaf, target_leaf) - 1; // switches on path
                                                                  // Ping-pong: the app returns to the host it last left, within Δ_f.
        let pingpong = self
            .last_move
            .get(&item.app)
            .is_some_and(|&(prev_from, t)| {
                target_leaf == prev_from && tick.saturating_sub(t) < self.config.pingpong_window
            });
        self.last_move.insert(item.app, (src_leaf, tick));

        self.stats.migrations += 1;
        records.push(MigrationRecord {
            tick,
            app: item.app,
            from: src_leaf,
            to: target_leaf,
            moved: demand,
            reason: item.reason,
            local,
            hops,
            pingpong,
        });
    }

    /// Consolidation (§IV-E end, §V-C5): below-threshold servers try to
    /// empty themselves — local targets first — and sleep if they succeed.
    fn consolidate(&mut self, tick: u64) -> (Vec<MigrationRecord>, Vec<NodeId>) {
        let mut records = Vec::new();
        let mut slept = Vec::new();
        // Candidates ordered thermally constrained (lowest hard cap, i.e.
        // hot zones) first, then emptiest first: the paper's Fig. 7 notes
        // that ReferenceWillow "tries to move as much work away from these [hot]
        // servers as possible … hence they remain shut down for more time".
        let mut candidates: Vec<usize> = (0..self.servers.len())
            .filter(|&i| {
                self.servers[i].active
                    && self.servers[i].utilization() < self.config.consolidation_threshold
            })
            .collect();
        candidates.sort_by(|&a, &b| {
            let cap = |i: usize| self.power.cap[self.servers[i].node.index()].0;
            cap(a)
                .total_cmp(&cap(b))
                .then(
                    self.servers[a]
                        .utilization()
                        .total_cmp(&self.servers[b].utilization()),
                )
                .then(a.cmp(&b))
        });

        // Servers that receive consolidated load this round must not be
        // evacuated in the same round — that would cascade apps through
        // multiple hops in a single period.
        let mut received: Vec<bool> = vec![false; self.servers.len()];
        for si in candidates {
            // Re-check: a candidate may have received load meanwhile.
            if received[si]
                || !self.servers[si].active
                || self.servers[si].utilization() >= self.config.consolidation_threshold
            {
                continue;
            }
            let leaf = self.servers[si].node;
            if self.servers[si].apps.is_empty() {
                self.sleep_server(si, tick);
                slept.push(leaf);
                continue;
            }
            if let Some(migs) = self.plan_full_evacuation(si, tick) {
                // A failed attempt mid-plan (injected reject/abort) stops
                // the evacuation: the server keeps its remaining apps and
                // stays awake — never sleep a server that still hosts work.
                let mut evacuated = true;
                for (item, target) in migs {
                    let tgt_idx =
                        self.leaf_server[target.index()].expect("target is a server leaf");
                    if self.attempt_migration(&item, target, tick, &mut records) {
                        received[tgt_idx] = true;
                    } else {
                        evacuated = false;
                        break;
                    }
                }
                if evacuated {
                    debug_assert!(self.servers[si].apps.is_empty());
                    self.sleep_server(si, tick);
                    slept.push(leaf);
                }
            }
        }
        // Consolidation migrations are re-labeled with their reason.
        for r in &mut records {
            r.reason = MigrationReason::Consolidation;
        }
        (records, slept)
    }

    /// Try to place *all* apps of server `si` elsewhere (local bins first,
    /// then anywhere eligible). Returns the migration plan or `None` if the
    /// server cannot be fully evacuated.
    fn plan_full_evacuation(
        &mut self,
        si: usize,
        _tick: u64,
    ) -> Option<Vec<(DeficitItem, NodeId)>> {
        let leaf = self.servers[si].node;
        // All-or-nothing: an app still in retry backoff blocks evacuation.
        if self.servers[si]
            .apps
            .iter()
            .any(|a| self.in_backoff(a.id, self.tick))
        {
            return None;
        }
        let items: Vec<DeficitItem> = self.servers[si]
            .apps
            .iter()
            .enumerate()
            .map(|(i, app)| DeficitItem {
                server: si,
                app: app.id,
                demand: self.servers[si].app_demand[i],
                reason: MigrationReason::Consolidation,
            })
            .collect();
        let sizes: Vec<f64> = items
            .iter()
            .map(|it| self.effective_size(it.demand))
            .collect();

        // Eligible bins: siblings first, then the rest of the data center.
        // Within each class: coolest zone (largest hard cap) first so
        // consolidated load lands where thermal headroom is, then
        // most-utilized first so consolidation fills the fullest servers
        // (the FFDLR "run every server at full utilization" rationale)
        // instead of cascading load through near-idle ones.
        let by_fill_desc = |nodes: &mut Vec<NodeId>| {
            nodes.sort_by(|&a, &b| {
                let cap = |n: NodeId| self.power.cap[n.index()].0;
                let util = |n: NodeId| {
                    self.leaf_server[n.index()].map_or(0.0, |i| self.servers[i].utilization())
                };
                cap(b)
                    .total_cmp(&cap(a))
                    .then(util(b).total_cmp(&util(a)))
                    .then(a.cmp(&b))
            });
        };
        let mut siblings: Vec<NodeId> = self
            .tree
            .siblings(leaf)
            .filter(|&l| self.target_eligible(l))
            .collect();
        by_fill_desc(&mut siblings);
        let mut rest: Vec<NodeId> = self
            .tree
            .leaves()
            .filter(|&l| l != leaf && self.target_eligible(l))
            .filter(|l| !siblings.contains(l))
            .collect();
        by_fill_desc(&mut rest);
        let mut bins_nodes = siblings;
        bins_nodes.extend(rest);
        if bins_nodes.is_empty() {
            return None;
        }
        // First-fit over the ordered bins keeps the locality preference;
        // a full FFDLR over the union would not honor sibling priority.
        let caps: Vec<f64> = bins_nodes.iter().map(|&l| self.bin_capacity(l).0).collect();
        let mut free = caps;
        let mut plan = Vec::with_capacity(items.len());
        let mut order: Vec<usize> = (0..items.len()).collect();
        order.sort_by(|&a, &b| sizes[b].total_cmp(&sizes[a]).then(a.cmp(&b)));
        let tick = self.tick;
        for i in order {
            let placed = free.iter().enumerate().position(|(b, &f)| {
                sizes[i] <= f + 1e-12 && !self.would_pingpong(items[i].app, bins_nodes[b], tick)
            });
            match placed {
                Some(b) => {
                    free[b] -= sizes[i];
                    plan.push((items[i].clone(), bins_nodes[b]));
                }
                None => return None, // all-or-nothing evacuation
            }
        }
        Some(plan)
    }

    fn sleep_server(&mut self, si: usize, tick: u64) {
        let server = &mut self.servers[si];
        server.active = false;
        server.last_activity_change = tick;
        server.smoother.reset();
        self.power.cp[server.node.index()] = Watts::ZERO;
        self.local_cp[server.node.index()] = Watts::ZERO;
    }

    // ------------------------------------------------------------------
    // Operator / failure-injection API
    // ------------------------------------------------------------------

    /// Change a server's ambient temperature mid-run — a cooling failure
    /// (ambient rises) or repair (ambient falls). The next supply tick
    /// recomputes the thermal cap from the new environment and the
    /// demand-side machinery migrates workload accordingly.
    ///
    /// # Panics
    /// Panics if `server` is out of range.
    pub fn set_server_ambient(&mut self, server: usize, ambient: willow_thermal::units::Celsius) {
        self.servers[server].thermal.set_ambient(ambient);
    }

    /// Drain a server for maintenance: try to evacuate every hosted app
    /// (margins respected) and put it to sleep. Returns `true` on success;
    /// on failure the server is left untouched and awake.
    ///
    /// # Panics
    /// Panics if `server` is out of range.
    pub fn drain_server(&mut self, server: usize) -> bool {
        if !self.servers[server].active {
            return true;
        }
        let tick = self.tick;
        if self.servers[server].apps.is_empty() {
            self.sleep_server(server, tick);
            return true;
        }
        let Some(plan) = self.plan_full_evacuation(server, tick) else {
            return false;
        };
        let mut records = Vec::new();
        for (item, target) in plan {
            if !self.attempt_migration(&item, target, tick, &mut records) {
                // Injected failure mid-drain: already-moved apps stay
                // moved, but the server keeps the rest and stays awake.
                return false;
            }
        }
        debug_assert!(self.servers[server].apps.is_empty());
        self.sleep_server(server, tick);
        true
    }

    /// Wake a sleeping server (after maintenance). No-op if already awake.
    ///
    /// # Panics
    /// Panics if `server` is out of range.
    pub fn force_wake(&mut self, server: usize) {
        if !self.servers[server].active {
            let tick = self.tick;
            self.servers[server].active = true;
            self.servers[server].last_activity_change = tick;
        }
    }

    /// Wake sleeping servers (largest thermal headroom first) until their
    /// combined ratings cover `needed`. Returns the woken leaves.
    fn wake_servers(&mut self, needed: Watts, tick: u64) -> Vec<NodeId> {
        let mut sleeping: Vec<usize> = (0..self.servers.len())
            .filter(|&i| !self.servers[i].active)
            .collect();
        sleeping.sort_by(|&a, &b| {
            self.servers[b]
                .thermal
                .rating()
                .0
                .total_cmp(&self.servers[a].thermal.rating().0)
                .then(a.cmp(&b))
        });
        let mut woken = Vec::new();
        let mut covered = Watts::ZERO;
        for si in sleeping {
            if covered >= needed {
                break;
            }
            let server = &mut self.servers[si];
            server.active = true;
            server.last_activity_change = tick;
            covered += server.thermal.rating();
            woken.push(server.node);
        }
        woken
    }
}
