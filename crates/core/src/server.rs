//! Per-server runtime state: hosted applications, activity, thermals,
//! demand smoothing.

use serde::{Deserialize, Serialize};
use willow_thermal::model::{DeviceThermal, ThermalParams};
use willow_thermal::units::{Celsius, Watts};
use willow_topology::NodeId;
use willow_workload::app::Application;
use willow_workload::smoothing::{ExpSmoother, HoltSmoother};

/// A demand smoother of either configured kind (Eq. 4 exponential or Holt
/// level+trend).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DemandSmoother {
    /// Plain exponential smoothing (paper Eq. 4).
    Exponential(ExpSmoother),
    /// Holt double-exponential smoothing.
    Holt(HoltSmoother),
}

impl DemandSmoother {
    /// Build from the configured kind.
    #[must_use]
    pub fn new(kind: crate::config::SmootherKind, alpha: f64) -> Self {
        match kind {
            crate::config::SmootherKind::Exponential => {
                DemandSmoother::Exponential(ExpSmoother::new(alpha))
            }
            crate::config::SmootherKind::Holt { beta } => {
                DemandSmoother::Holt(HoltSmoother::new(alpha, beta))
            }
        }
    }

    /// Feed one raw measurement; returns the smoothed demand (floored at
    /// zero — a Holt level can transiently undershoot on sharp drops).
    pub fn observe(&mut self, raw: Watts) -> Watts {
        match self {
            DemandSmoother::Exponential(s) => s.observe(raw),
            DemandSmoother::Holt(s) => s.observe(raw).non_negative(),
        }
    }

    /// Forget all history.
    pub fn reset(&mut self) {
        match self {
            DemandSmoother::Exponential(s) => s.reset(),
            DemandSmoother::Holt(s) => s.reset(),
        }
    }
}

/// Static description of one server used to construct the controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    /// The leaf node in the PMU tree this server occupies.
    pub node: NodeId,
    /// Thermal model parameters.
    pub thermal: ThermalParams,
    /// Ambient temperature at the server's position (hot/cold zone).
    pub ambient: Celsius,
    /// Thermal limit.
    pub t_limit: Celsius,
    /// Nameplate power rating (hard circuit cap).
    pub rating: Watts,
    /// Applications initially hosted here.
    pub apps: Vec<Application>,
    /// Whether the server starts active.
    pub active: bool,
    /// Non-migratable power the server draws while active (the static part
    /// of the testbed hosts' Table-I curve; zero for the idealized
    /// simulation servers). Counted in demand and budgets but never
    /// offered to the bin packer.
    pub base_load: Watts,
    /// Denominator for the utilization measure used by consolidation: the
    /// hosted applications' power at 100 % utilization. Defaults to the
    /// rating; the testbed hosts set it to the Table-I curve's dynamic
    /// range so `utilization()` means *CPU* utilization as in the paper.
    pub full_util_power: Watts,
}

impl ServerSpec {
    /// The paper's simulated server: 25 °C ambient, 70 °C limit, 450 W
    /// rating, initially active and empty.
    ///
    /// Thermal constants use [`ThermalParams::sustained`] (c2 = 0.1, c1
    /// derived so steady-state power at the limit equals the rating) rather
    /// than the paper's published `(0.08, 0.05)` — the published pair cannot
    /// sustain the power levels the paper's own figures show; see
    /// `DESIGN.md`. The hot-zone behaviour is preserved: at 40 °C ambient
    /// the sustained cap drops to 300 W, exactly the Fig. 5 shape.
    #[must_use]
    pub fn simulation_default(node: NodeId) -> Self {
        let ambient = Celsius(25.0);
        let t_limit = Celsius(70.0);
        let rating = Watts(450.0);
        ServerSpec {
            node,
            thermal: ThermalParams::sustained(0.1, ambient, t_limit, rating),
            ambient,
            t_limit,
            rating,
            apps: Vec::new(),
            active: true,
            base_load: Watts::ZERO,
            full_util_power: rating,
        }
    }

    /// The emulated testbed host: 25 °C ambient, 70 °C limit, a rating
    /// matching the reconstructed Table-I curve's 100 %-utilization draw
    /// (≈220 W), the curve's static part as non-migratable base load, and
    /// its dynamic range as the utilization denominator (so `utilization()`
    /// is CPU utilization as the paper measures it). Thermal constants via
    /// [`ThermalParams::sustained`]; the published fit `(0.2, 0.1)` is kept
    /// for the Fig. 14 reproduction only.
    #[must_use]
    pub fn testbed_default(node: NodeId) -> Self {
        let ambient = Celsius(25.0);
        let t_limit = Celsius(70.0);
        let rating = Watts(220.0);
        ServerSpec {
            node,
            thermal: ThermalParams::sustained(0.1, ambient, t_limit, rating),
            ambient,
            t_limit,
            rating,
            apps: Vec::new(),
            active: true,
            base_load: Watts(170.67),
            full_util_power: Watts(48.565),
        }
    }

    /// Builder-style: set the non-migratable base load.
    #[must_use]
    pub fn with_base_load(mut self, base_load: Watts) -> Self {
        self.base_load = base_load;
        self
    }

    /// Builder-style: set the utilization denominator (CPU-utilization
    /// semantics for the testbed hosts).
    #[must_use]
    pub fn with_full_util_power(mut self, full_util_power: Watts) -> Self {
        self.full_util_power = full_util_power;
        self
    }

    /// Builder-style: set the hosted applications.
    #[must_use]
    pub fn with_apps(mut self, apps: Vec<Application>) -> Self {
        self.apps = apps;
        self
    }

    /// Builder-style: set the ambient temperature (hot zones).
    #[must_use]
    pub fn with_ambient(mut self, ambient: Celsius) -> Self {
        self.ambient = ambient;
        self
    }

    /// Builder-style: start inactive (deep sleep).
    #[must_use]
    pub fn inactive(mut self) -> Self {
        self.active = false;
        self
    }
}

/// Live-ops fencing state of a server (the drain state machine).
///
/// `Active → Draining → Fenced → Retired`, driven by the command plane
/// (`willow_core::command`): a draining server keeps running its apps but
/// stops accepting new ones; a fenced server is empty, asleep and
/// ineligible for wake-up; a retired server's tree slot has been removed
/// and its state slot is a permanent tombstone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum FenceState {
    /// Normal operation: hosts apps, receives budget, eligible as a
    /// migration target and for sleep/wake decisions.
    #[default]
    Active,
    /// Being evacuated: existing apps keep running under budget, but the
    /// server cannot receive migrations and is excluded from
    /// consolidation sleep and wake-up.
    Draining,
    /// Evacuated and powered down: zero cap, zero budget, never woken.
    Fenced,
    /// Removed from the topology; the server slot is a tombstone and its
    /// `node` id no longer names a live tree leaf.
    Retired,
}

impl FenceState {
    /// True only for [`FenceState::Active`] — the single state in which a
    /// server participates fully in control decisions.
    #[must_use]
    pub fn is_active(self) -> bool {
        self == FenceState::Active
    }
}

/// Live state of a server inside the controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerState {
    /// PMU-tree leaf this server occupies.
    pub node: NodeId,
    /// Currently hosted applications (the migration units).
    pub apps: Vec<Application>,
    /// Latest *raw* demand per hosted app, aligned with `apps`.
    pub app_demand: Vec<Watts>,
    /// Temporary migration-cost demand charged this period (§IV-E).
    pub pending_cost: Watts,
    /// Smoothed node demand `CP_{0,i}` (Eq. 4 or Holt).
    pub smoother: DemandSmoother,
    /// Thermal state.
    pub thermal: DeviceThermal,
    /// Active (true) or deep sleep (false).
    pub active: bool,
    /// Tick at which the server last changed activity state.
    pub last_activity_change: u64,
    /// Non-migratable draw while active (see [`ServerSpec::base_load`]).
    pub base_load: Watts,
    /// Utilization denominator (see [`ServerSpec::full_util_power`]).
    pub full_util_power: Watts,
    /// Live-ops fencing state (defaults to [`FenceState::Active`], so
    /// pre-command-plane snapshots still parse).
    #[serde(default)]
    pub fence: FenceState,
}

impl ServerState {
    /// Construct live state from a spec with a plain Eq.-4 smoother.
    #[must_use]
    pub fn from_spec(spec: &ServerSpec, alpha: f64) -> Self {
        ServerState::from_spec_with_smoother(
            spec,
            DemandSmoother::Exponential(ExpSmoother::new(alpha)),
        )
    }

    /// Construct live state from a spec with an explicit smoother.
    #[must_use]
    pub fn from_spec_with_smoother(spec: &ServerSpec, smoother: DemandSmoother) -> Self {
        let n_apps = spec.apps.len();
        ServerState {
            node: spec.node,
            apps: spec.apps.clone(),
            app_demand: vec![Watts::ZERO; n_apps],
            pending_cost: Watts::ZERO,
            smoother,
            thermal: DeviceThermal::new(spec.thermal, spec.ambient, spec.t_limit, spec.rating),
            active: spec.active,
            last_activity_change: 0,
            base_load: spec.base_load,
            full_util_power: spec.full_util_power,
            fence: FenceState::default(),
        }
    }

    /// Combined power demand of the hosted applications (excluding base
    /// load and migration costs).
    #[must_use]
    pub fn app_power(&self) -> Watts {
        self.app_demand.iter().copied().sum()
    }

    /// Raw demand: base load plus hosted app demands plus temporary
    /// migration cost. A sleeping server demands nothing.
    #[must_use]
    pub fn raw_demand(&self) -> Watts {
        if !self.active {
            return Watts::ZERO;
        }
        self.base_load + self.app_power() + self.pending_cost
    }

    /// Utilization: hosted application power relative to the full-load
    /// application power (`full_util_power`). For simulation servers this
    /// is demand/rating; for testbed hosts it is CPU utilization.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if !self.active || self.full_util_power.0 <= 0.0 {
            return 0.0;
        }
        (self.app_power() / self.full_util_power).clamp(0.0, 1.0)
    }

    /// Remove the app at `idx`, returning it and its last demand.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn take_app(&mut self, idx: usize) -> (Application, Watts) {
        let app = self.apps.remove(idx);
        let demand = self.app_demand.remove(idx);
        (app, demand)
    }

    /// Host an app arriving by migration, with its current demand.
    pub fn host_app(&mut self, app: Application, demand: Watts) {
        self.apps.push(app);
        self.app_demand.push(demand);
    }

    /// Index of an app by id.
    #[must_use]
    pub fn find_app(&self, id: willow_workload::app::AppId) -> Option<usize> {
        self.apps.iter().position(|a| a.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use willow_workload::app::{AppId, SIM_APP_CLASSES};

    fn spec_with_two_apps() -> ServerSpec {
        let apps = vec![
            Application::new(AppId(0), 0, &SIM_APP_CLASSES[0]),
            Application::new(AppId(1), 2, &SIM_APP_CLASSES[2]),
        ];
        ServerSpec::simulation_default(NodeId(3)).with_apps(apps)
    }

    #[test]
    fn raw_demand_sums_apps_and_cost() {
        let mut s = ServerState::from_spec(&spec_with_two_apps(), 0.5);
        s.app_demand = vec![Watts(30.0), Watts(50.0)];
        assert_eq!(s.raw_demand(), Watts(80.0));
        s.pending_cost = Watts(4.0);
        assert_eq!(s.raw_demand(), Watts(84.0));
    }

    #[test]
    fn sleeping_server_demands_nothing() {
        let mut s = ServerState::from_spec(&spec_with_two_apps(), 0.5);
        s.app_demand = vec![Watts(30.0), Watts(50.0)];
        s.active = false;
        assert_eq!(s.raw_demand(), Watts::ZERO);
        assert_eq!(s.utilization(), 0.0);
    }

    #[test]
    fn utilization_is_demand_over_rating() {
        let mut s = ServerState::from_spec(&spec_with_two_apps(), 0.5);
        s.app_demand = vec![Watts(45.0), Watts(45.0)];
        assert!((s.utilization() - 0.2).abs() < 1e-12); // 90/450
    }

    #[test]
    fn take_and_host_keep_demand_aligned() {
        let mut s = ServerState::from_spec(&spec_with_two_apps(), 0.5);
        s.app_demand = vec![Watts(30.0), Watts(50.0)];
        let (app, d) = s.take_app(0);
        assert_eq!(app.id, AppId(0));
        assert_eq!(d, Watts(30.0));
        assert_eq!(s.apps.len(), 1);
        assert_eq!(s.raw_demand(), Watts(50.0));
        s.host_app(app, d);
        assert_eq!(s.raw_demand(), Watts(80.0));
        assert_eq!(s.find_app(AppId(0)), Some(1));
        assert_eq!(s.find_app(AppId(7)), None);
    }

    #[test]
    fn builders() {
        use willow_thermal::units::Celsius;
        let spec = ServerSpec::simulation_default(NodeId(0))
            .with_ambient(Celsius(40.0))
            .inactive();
        assert_eq!(spec.ambient, Celsius(40.0));
        assert!(!spec.active);
        // Sustained constants: steady state at rated power hits the limit.
        let tb = ServerSpec::testbed_default(NodeId(1));
        let steady = willow_thermal::limit::steady_state_power(tb.thermal, tb.ambient, tb.t_limit);
        assert!((steady.0 - tb.rating.0).abs() < 1e-9);
    }
}
