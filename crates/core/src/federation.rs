//! Multi-zone federation: N independent [`Willow`] controllers under a
//! thin, fault-tolerant supply broker.
//!
//! One `Willow` controls one PMU tree. A [`Federation`] owns several —
//! one per data-center zone — and a [`SupplyBroker`] splits the total
//! supply across zones in proportion to each zone's aggregate reported
//! demand, reusing the same capped proportional water-filling
//! ([`willow_power::allocation::allocate_proportional_into`]) that every
//! interior PMU node already runs. The broker is deliberately *thin*:
//! it holds one [`ZoneLink`] ledger entry per zone and never reaches
//! into a zone's tree — zones stay fully independent controllers.
//!
//! ## Failure model and defenses (mirroring the leaf-side watchdog)
//!
//! * **Stale reports** ([`ZoneCondition::StaleReport`]): the broker
//!   splits on the zone's last known demand and caps the zone's grant at
//!   its last grant — a *tightening-only* split, the federation-level
//!   analogue of the leaf watchdog's rule that a stale directive may
//!   tighten but never loosen a budget.
//! * **Unreachable zones** ([`ZoneCondition::Isolated`] /
//!   [`ZoneCondition::Down`]): no grant can be delivered. The zone runs
//!   open-loop on its last delivered grant; after
//!   [`BrokerConfig::missed_grant_threshold`] consecutive missed grants
//!   it *trips* and self-tightens to
//!   [`BrokerConfig::fallback_fraction`] of that grant. Both ends
//!   compute the same value from the same missed-grant count without
//!   communicating, so the broker can *reserve* exactly what the zone
//!   will self-apply (reservation-first allocation) and conservation
//!   holds with no coordination.
//! * **Broker crash**: zones keep running on the same open-loop
//!   protocol (a broker outage looks, from every zone, like isolation).
//!   A [`BrokerSnapshot`] restores the ledger and
//!   [`SupplyBroker::rejoin`] reconciles each reachable zone against
//!   field truth — no zone is ever stranded on a dead broker.
//!
//! ## Conservation
//!
//! Every apportionment satisfies `Σ grants ≤ total supply` *by
//! construction*: reservations for unreachable zones are clamped to the
//! supply still available (clamped watts are counted as *overdraw*, the
//! physical debt a breaker would absorb), and the proportional split
//! distributes only what remains. [`BrokerCounters::conservation_violations`]
//! double-checks the invariant arithmetically on every call and must
//! stay zero forever.

use serde::{Deserialize, Serialize};
use willow_power::allocation::{allocate_proportional_into, AllocationScratch};
use willow_thermal::units::Watts;

use crate::control::{PlanSeries, Willow, WillowError};
use crate::disturbance::Disturbances;
use crate::migration::TickReport;
use crate::snapshot::WillowSnapshot;

/// Tolerance for the conservation double-check: float summation of many
/// grants may differ from the analytic bound by a few ULPs.
const CONSERVATION_EPS: f64 = 1e-6;

/// Broker tunables. Defaults mirror the leaf-side stale-directive
/// watchdog (`RobustnessConfig`): trip after 3 consecutive misses, fall
/// back to half the last-known-good value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BrokerConfig {
    /// Consecutive missed grants before an unreachable zone trips and
    /// self-tightens its open-loop supply. Must be at least 1.
    pub missed_grant_threshold: u32,
    /// Fraction of the last delivered grant a *tripped* zone self-applies
    /// (and the broker reserves). In `(0, 1]`.
    pub fallback_fraction: f64,
    /// Split on *predicted* zone demand instead of the last report. The
    /// broker keeps one [`PlanSeries`] per zone, fed by fresh reports, and
    /// apportions on each zone's one-period-ahead forecast; a zone whose
    /// report is stale is forecast further out (`1 + stale periods`), so
    /// the reactive stale rule — freeze on the last report — becomes the
    /// degenerate "no forecast available" case. Off by default: a reactive
    /// broker's split is bit-for-bit what it was before this field
    /// existed. Absent in pre-forecast configs.
    #[serde(default)]
    pub forecast_apportionment: bool,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            missed_grant_threshold: 3,
            fallback_fraction: 0.5,
            forecast_apportionment: false,
        }
    }
}

impl BrokerConfig {
    /// Validate the tunables.
    ///
    /// # Errors
    /// Returns [`FederationError::Config`] naming the broken rule.
    pub fn validate(&self) -> Result<(), FederationError> {
        if self.missed_grant_threshold == 0 {
            return Err(FederationError::Config {
                reason: "missed_grant_threshold must be at least 1",
            });
        }
        if !(self.fallback_fraction > 0.0 && self.fallback_fraction <= 1.0) {
            return Err(FederationError::Config {
                reason: "fallback_fraction must be in (0, 1]",
            });
        }
        Ok(())
    }
}

/// The broker's view of one zone for one control period.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ZoneCondition {
    /// Reports arrive and grants are deliverable.
    #[default]
    Healthy,
    /// The zone's demand report did not arrive this period (report path
    /// degraded), but grants still reach the zone.
    StaleReport,
    /// The zone is network-isolated: no report arrives and no grant can
    /// be delivered. Its controller keeps running, open-loop on the
    /// missed-grant protocol.
    Isolated,
    /// The zone's controller is down: no report, no grant delivery, and
    /// the zone's leaves free-run on their last applied budgets.
    Down,
}

impl ZoneCondition {
    /// Does a fresh demand report arrive this period?
    #[must_use]
    pub fn report_fresh(self) -> bool {
        matches!(self, ZoneCondition::Healthy)
    }

    /// Can a grant be delivered to the zone this period?
    #[must_use]
    pub fn grant_deliverable(self) -> bool {
        matches!(self, ZoneCondition::Healthy | ZoneCondition::StaleReport)
    }
}

/// Broker-side ledger entry for one zone.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ZoneLink {
    /// Last demand report received from the zone.
    pub last_report: Watts,
    /// Last grant actually *delivered* to the zone (not updated while the
    /// zone is unreachable — it anchors the open-loop protocol).
    pub last_grant: Watts,
    /// Consecutive periods without a fresh report.
    pub stale_reports: u32,
    /// Consecutive periods the grant was undeliverable.
    pub missed_grants: u32,
    /// Tripped: `missed_grants` reached the threshold, so the zone has
    /// self-tightened to `fallback_fraction` of `last_grant`.
    pub tripped: bool,
}

impl ZoneLink {
    /// The supply an unreachable zone self-applies this period — and
    /// therefore exactly what the broker reserves for it. Both sides
    /// derive it from the same missed-grant count, so they agree without
    /// communicating.
    #[must_use]
    pub fn open_loop_supply(&self, config: &BrokerConfig) -> Watts {
        if self.tripped {
            Watts(self.last_grant.0 * config.fallback_fraction)
        } else {
            self.last_grant
        }
    }
}

/// Cumulative broker counters (federation-level telemetry).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BrokerCounters {
    /// Apportionments performed.
    pub apportions: u64,
    /// Zone-periods served on a stale demand report.
    pub stale_report_ticks: u64,
    /// Zone-periods a grant was undeliverable (isolation or zone crash).
    pub unreachable_zone_ticks: u64,
    /// Periods the broker itself was down (no apportionment ran).
    pub broker_down_ticks: u64,
    /// Zone links that tripped into the self-tightened fallback.
    pub link_trips: u64,
    /// Periods where reserving unreachable zones' open-loop supply
    /// exhausted the total (reservations clamped, reachable zones
    /// starved).
    pub overdraw_ticks: u64,
    /// Total watts of reservation that could not be backed by supply
    /// (summed over overdraw periods).
    pub overdraw_watts: f64,
    /// Apportionments whose grants summed above the total supply. Must
    /// stay zero forever; counted (not asserted) so a violation surfaces
    /// in audits rather than tearing down the run.
    pub conservation_violations: u64,
}

/// Serializable image of a running broker — the federation-level half of
/// a checkpoint. Restoring it after a broker crash strands no zone: the
/// ledger resumes from the last checkpoint and
/// [`SupplyBroker::rejoin`] reconciles each reachable zone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BrokerSnapshot {
    /// Broker tunables.
    pub config: BrokerConfig,
    /// Per-zone ledger entries.
    pub links: Vec<ZoneLink>,
    /// Cumulative counters.
    pub counters: BrokerCounters,
    /// Grants from the last apportionment, per zone.
    #[serde(default)]
    pub grants: Vec<Watts>,
    /// Per-zone demand history and forecaster state (one entry per zone,
    /// fed by fresh reports). Absent in pre-forecast checkpoints, in which
    /// case restore re-seeds empty series — predictions fall back to the
    /// last report until the rings refill.
    #[serde(default)]
    pub forecasts: Vec<PlanSeries>,
}

/// Splits total supply across zones proportional to aggregate reported
/// demand, with reservation-first handling of unreachable zones. See the
/// [module docs](self) for the failure model.
#[derive(Debug)]
pub struct SupplyBroker {
    config: BrokerConfig,
    links: Vec<ZoneLink>,
    counters: BrokerCounters,
    /// Ledger of the last apportionment, per zone.
    grants: Vec<Watts>,
    /// Per-zone demand history and forecaster state, fed by fresh
    /// reports. Always maintained (it is cheap and keeps checkpoints
    /// mode-agnostic); only read when
    /// [`BrokerConfig::forecast_apportionment`] is set.
    forecasts: Vec<PlanSeries>,
    // Scratch for the proportional split (reused across calls).
    demands: Vec<Watts>,
    caps: Vec<Watts>,
    budgets: Vec<Watts>,
    reachable: Vec<usize>,
    scratch: AllocationScratch,
}

impl SupplyBroker {
    /// Build a broker for `n_zones` zones.
    ///
    /// # Errors
    /// Rejects an empty federation or invalid [`BrokerConfig`].
    pub fn new(n_zones: usize, config: BrokerConfig) -> Result<Self, FederationError> {
        if n_zones == 0 {
            return Err(FederationError::NoZones);
        }
        config.validate()?;
        Ok(SupplyBroker {
            config,
            links: vec![ZoneLink::default(); n_zones],
            counters: BrokerCounters::default(),
            grants: vec![Watts::ZERO; n_zones],
            forecasts: vec![PlanSeries::standard(); n_zones],
            demands: Vec::with_capacity(n_zones),
            caps: Vec::with_capacity(n_zones),
            budgets: Vec::with_capacity(n_zones),
            reachable: Vec::with_capacity(n_zones),
            scratch: AllocationScratch::default(),
        })
    }

    /// Zones under this broker.
    #[must_use]
    pub fn n_zones(&self) -> usize {
        self.links.len()
    }

    /// Broker tunables.
    #[must_use]
    pub fn config(&self) -> &BrokerConfig {
        &self.config
    }

    /// Per-zone ledger entries.
    #[must_use]
    pub fn links(&self) -> &[ZoneLink] {
        &self.links
    }

    /// Cumulative counters.
    #[must_use]
    pub fn counters(&self) -> &BrokerCounters {
        &self.counters
    }

    /// Grants from the last apportionment (or broker-down protocol
    /// values), per zone.
    #[must_use]
    pub fn grants(&self) -> &[Watts] {
        &self.grants
    }

    /// Per-zone demand forecasts (fed by fresh reports; read by the
    /// split only when [`BrokerConfig::forecast_apportionment`] is set).
    #[must_use]
    pub fn forecasts(&self) -> &[PlanSeries] {
        &self.forecasts
    }

    /// Split `total` across the zones for one control period.
    ///
    /// `reports[i]` carries zone *i*'s fresh aggregate-demand report and
    /// must be `Some` exactly when `conditions[i]` is
    /// [`ZoneCondition::Healthy`]. Returns the per-zone grants; the same
    /// values stay readable via [`grants`](Self::grants).
    ///
    /// Order of operations (all deterministic):
    /// 1. Ledger upkeep: fresh reports recorded, staleness and
    ///    missed-grant counters advanced, links tripped at the threshold.
    /// 2. Reservation-first: each unreachable zone's open-loop supply is
    ///    reserved out of `total` (clamped to what is left — clamped
    ///    watts count as overdraw).
    /// 3. The remainder is split over reachable zones in proportion to
    ///    their (last known) demand, capped at the last grant for
    ///    stale-report zones (tightening-only). All-zero demand falls
    ///    back to an equal split.
    ///
    /// A single-zone federation with a healthy zone takes a fast path
    /// granting `total` verbatim, which is what makes a one-zone
    /// federation bit-for-bit identical to a standalone controller.
    ///
    /// # Panics
    /// Panics if slice lengths do not match the zone count.
    pub fn apportion(
        &mut self,
        total: Watts,
        conditions: &[ZoneCondition],
        reports: &[Option<Watts>],
    ) -> &[Watts] {
        let n = self.links.len();
        assert_eq!(conditions.len(), n, "one condition per zone");
        assert_eq!(reports.len(), n, "one report slot per zone");
        self.counters.apportions += 1;

        // 1. Ledger upkeep.
        for (i, link) in self.links.iter_mut().enumerate() {
            if conditions[i].report_fresh() {
                link.last_report = reports[i].expect("healthy zone must carry a report");
                link.stale_reports = 0;
                self.forecasts[i].observe(link.last_report);
            } else {
                link.stale_reports += 1;
                if conditions[i].grant_deliverable() {
                    self.counters.stale_report_ticks += 1;
                }
            }
            if conditions[i].grant_deliverable() {
                link.missed_grants = 0;
                link.tripped = false;
            } else {
                self.counters.unreachable_zone_ticks += 1;
                link.missed_grants += 1;
                if link.missed_grants >= self.config.missed_grant_threshold && !link.tripped {
                    link.tripped = true;
                    self.counters.link_trips += 1;
                }
            }
        }

        // Single-zone fast path: a lone healthy zone receives the total
        // verbatim — no split arithmetic that could perturb the last ULP.
        if n == 1 && conditions[0] == ZoneCondition::Healthy {
            self.grants[0] = total;
            self.links[0].last_grant = total;
            return &self.grants;
        }

        // 2. Reserve unreachable zones' open-loop supply, in zone order.
        let mut available = total;
        let mut overdrew = false;
        for (i, link) in self.links.iter().enumerate() {
            if conditions[i].grant_deliverable() {
                continue;
            }
            let wanted = link.open_loop_supply(&self.config);
            let reserved = wanted.min(available);
            if reserved < wanted {
                overdrew = true;
                self.counters.overdraw_watts += (wanted - reserved).0;
            }
            self.grants[i] = reserved;
            available -= reserved;
        }
        if overdrew {
            self.counters.overdraw_ticks += 1;
        }

        // 3. Proportional split of the remainder over reachable zones.
        self.reachable.clear();
        self.demands.clear();
        self.caps.clear();
        for (i, link) in self.links.iter().enumerate() {
            if !conditions[i].grant_deliverable() {
                continue;
            }
            self.reachable.push(i);
            self.demands.push(if self.config.forecast_apportionment {
                // Split on where the zone's demand is *going*. A stale
                // zone's history is frozen, so its forecast extrapolates
                // further out the longer the report stays missing; with
                // no history at all the forecast degenerates to the last
                // report — exactly the reactive rule.
                let horizon = 1 + link.stale_reports;
                self.forecasts[i]
                    .predict(horizon)
                    .map_or(link.last_report, Watts::non_negative)
            } else {
                link.last_report
            });
            self.caps.push(if conditions[i].report_fresh() {
                // No broker-side cap for a healthy zone: its own root
                // clips to the zone thermal/circuit limits.
                available
            } else {
                // Tightening-only while the report is stale.
                link.last_grant.min(available)
            });
        }
        if self.demands.iter().all(|d| d.0 == 0.0) {
            // No demand signal at all: fall back to an equal split so
            // newly-started zones are not starved forever.
            for d in &mut self.demands {
                *d = Watts(1.0);
            }
        }
        allocate_proportional_into(
            available,
            &self.demands,
            &self.caps,
            &mut self.budgets,
            &mut self.scratch,
        )
        .expect("finite non-negative demands and caps cannot fail to allocate");
        for (slot, &i) in self.reachable.iter().enumerate() {
            let g = self.budgets[slot];
            self.grants[i] = g;
            self.links[i].last_grant = g;
        }

        // Conservation double-check: Σ grants ≤ total, always.
        let granted: f64 = self.grants.iter().map(|g| g.0).sum();
        if granted > total.0 * (1.0 + CONSERVATION_EPS) + CONSERVATION_EPS {
            self.counters.conservation_violations += 1;
        }
        &self.grants
    }

    /// One period with the broker itself down: no apportionment runs,
    /// every zone misses its grant (and counts toward tripping), and the
    /// recorded "grants" are the open-loop values the zones self-apply.
    pub fn broker_down_tick(&mut self) -> &[Watts] {
        self.counters.broker_down_ticks += 1;
        for (link, grant) in self.links.iter_mut().zip(&mut self.grants) {
            link.stale_reports += 1;
            link.missed_grants += 1;
            if link.missed_grants >= self.config.missed_grant_threshold && !link.tripped {
                link.tripped = true;
                self.counters.link_trips += 1;
            }
            *grant = if link.tripped {
                Watts(link.last_grant.0 * self.config.fallback_fraction)
            } else {
                link.last_grant
            };
        }
        &self.grants
    }

    /// The supply zone `zone` actually applies this period: its grant
    /// when deliverable, otherwise the zone-side open-loop protocol
    /// value.
    #[must_use]
    pub fn zone_supply(&self, zone: usize, condition: ZoneCondition) -> Watts {
        if condition.grant_deliverable() {
            self.grants[zone]
        } else {
            self.links[zone].open_loop_supply(&self.config)
        }
    }

    /// Reconcile one zone's ledger against field truth after it rejoins
    /// (or after the broker itself restarts): the zone's fresh aggregate
    /// demand becomes the report of record, its currently-applied
    /// open-loop supply becomes the grant anchor, and the staleness /
    /// missed-grant machinery resets.
    pub fn rejoin(&mut self, zone: usize, fresh_report: Watts) {
        let link = &mut self.links[zone];
        link.last_grant = link.open_loop_supply(&self.config);
        link.last_report = fresh_report;
        link.stale_reports = 0;
        link.missed_grants = 0;
        link.tripped = false;
        // The rejoining zone's demand re-enters the forecast history too:
        // an outage is a gap in observations, not a reason to forget the
        // zone's demand shape.
        self.forecasts[zone].observe(fresh_report);
    }

    /// Capture the broker's complete mutable state.
    #[must_use]
    pub fn snapshot(&self) -> BrokerSnapshot {
        BrokerSnapshot {
            config: self.config,
            links: self.links.clone(),
            counters: self.counters,
            grants: self.grants.clone(),
            forecasts: self.forecasts.clone(),
        }
    }

    /// Rebuild a broker from a snapshot.
    ///
    /// # Errors
    /// Rejects an empty or invalid snapshot (see [`SupplyBroker::new`]).
    pub fn restore(snapshot: BrokerSnapshot) -> Result<Self, FederationError> {
        let mut broker = SupplyBroker::new(snapshot.links.len(), snapshot.config)?;
        broker.links = snapshot.links;
        broker.counters = snapshot.counters;
        if snapshot.grants.len() == broker.links.len() {
            broker.grants = snapshot.grants;
        }
        // Pre-forecast checkpoints carry no series: keep the freshly
        // seeded empty ones and let predictions fall back to the last
        // report until the rings refill.
        if snapshot.forecasts.len() == broker.links.len() {
            broker.forecasts = snapshot.forecasts;
        }
        Ok(broker)
    }

    /// Replace the ledger with a checkpoint's (broker crash recovery).
    /// The caller should then [`rejoin`](Self::rejoin) every currently
    /// reachable zone to reconcile the restored ledger with field truth.
    ///
    /// # Errors
    /// Rejects a snapshot whose zone count does not match.
    pub fn recover(&mut self, snapshot: BrokerSnapshot) -> Result<(), FederationError> {
        if snapshot.links.len() != self.links.len() {
            return Err(FederationError::Shape {
                field: "broker.links",
                found: snapshot.links.len(),
                expected: self.links.len(),
            });
        }
        // Only the ledger is control state and restored verbatim. The
        // counters are cumulative telemetry: the running tally (which
        // includes the outage the broker is recovering from) is kept
        // rather than rolled back to the checkpoint's.
        self.config = snapshot.config;
        self.links = snapshot.links;
        if snapshot.grants.len() == self.links.len() {
            self.grants = snapshot.grants;
        }
        if snapshot.forecasts.len() == self.links.len() {
            self.forecasts = snapshot.forecasts;
        }
        Ok(())
    }
}

/// Errors from building or restoring a [`Federation`].
#[derive(Debug, Clone, PartialEq)]
pub enum FederationError {
    /// A federation needs at least one zone.
    NoZones,
    /// Broker tunables out of range.
    Config {
        /// Which rule was violated.
        reason: &'static str,
    },
    /// A zone controller failed to build or restore.
    Zone {
        /// Zone index.
        index: usize,
        /// The underlying controller error.
        source: WillowError,
    },
    /// A snapshot's shape does not match the federation.
    Shape {
        /// Which field is malformed.
        field: &'static str,
        /// Entries found.
        found: usize,
        /// Entries required.
        expected: usize,
    },
}

impl std::fmt::Display for FederationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FederationError::NoZones => write!(f, "a federation needs at least one zone"),
            FederationError::Config { reason } => write!(f, "invalid broker config: {reason}"),
            FederationError::Zone { index, source } => {
                write!(f, "zone {index}: {source}")
            }
            FederationError::Shape {
                field,
                found,
                expected,
            } => write!(
                f,
                "federation snapshot field `{field}` has {found} entries, expected {expected}"
            ),
        }
    }
}

impl std::error::Error for FederationError {}

/// Serializable image of a whole federation: every zone controller plus
/// the broker ledger. JSON-lossless, like [`WillowSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FederationSnapshot {
    /// One controller snapshot per zone, in zone order.
    pub zones: Vec<WillowSnapshot>,
    /// The broker's ledger and counters.
    pub broker: BrokerSnapshot,
}

/// N independent zone controllers under one [`SupplyBroker`].
pub struct Federation {
    zones: Vec<Willow>,
    broker: SupplyBroker,
    // Per-tick scratch (reused, no steady-state allocation).
    reports: Vec<Option<Watts>>,
}

impl Federation {
    /// Build a federation from per-zone controllers.
    ///
    /// # Errors
    /// Rejects an empty zone list or invalid broker config.
    pub fn new(zones: Vec<Willow>, config: BrokerConfig) -> Result<Self, FederationError> {
        let broker = SupplyBroker::new(zones.len(), config)?;
        let n = zones.len();
        Ok(Federation {
            zones,
            broker,
            reports: vec![None; n],
        })
    }

    /// Number of zones.
    #[must_use]
    pub fn n_zones(&self) -> usize {
        self.zones.len()
    }

    /// The zone controllers, in zone order.
    #[must_use]
    pub fn zones(&self) -> &[Willow] {
        &self.zones
    }

    /// One zone controller.
    #[must_use]
    pub fn zone(&self, i: usize) -> &Willow {
        &self.zones[i]
    }

    /// Mutable access to one zone controller (live-ops commands, etc.).
    pub fn zone_mut(&mut self, i: usize) -> &mut Willow {
        &mut self.zones[i]
    }

    /// The broker.
    #[must_use]
    pub fn broker(&self) -> &SupplyBroker {
        &self.broker
    }

    /// A zone's aggregate demand as the broker would read it: the CP
    /// (current power demand) at the zone's root, i.e. last period's
    /// measured, smoothed total — reports reach the broker one period
    /// behind, exactly like reports inside a tree reach the root.
    #[must_use]
    pub fn zone_demand(&self, i: usize) -> Watts {
        let zone = &self.zones[i];
        zone.power().cp[zone.tree().root().index()]
    }

    /// Advance every zone one demand period.
    ///
    /// `broker_up` is false while the broker itself is crashed: no
    /// apportionment runs and every zone self-applies the open-loop
    /// protocol. `app_demands[i]` / `disturbs[i]` / `reports[i]` are zone
    /// *i*'s inputs and output, with the same semantics as
    /// [`Willow::step_into`]. Zones whose condition is
    /// [`ZoneCondition::Down`] step open-loop (their leaves free-run);
    /// all others step closed-loop on the supply from
    /// [`SupplyBroker::zone_supply`].
    ///
    /// # Panics
    /// Panics if the slice lengths do not match the zone count.
    pub fn step(
        &mut self,
        total_supply: Watts,
        broker_up: bool,
        conditions: &[ZoneCondition],
        app_demands: &[Vec<Watts>],
        disturbs: &[Disturbances],
        reports: &mut [TickReport],
    ) {
        let n = self.zones.len();
        assert_eq!(conditions.len(), n, "one condition per zone");
        assert_eq!(app_demands.len(), n, "one demand slice per zone");
        assert_eq!(disturbs.len(), n, "one disturbance set per zone");
        assert_eq!(reports.len(), n, "one report buffer per zone");

        if broker_up {
            for (i, cond) in conditions.iter().enumerate() {
                let fresh = cond.report_fresh().then(|| self.zone_demand(i));
                self.reports[i] = fresh;
            }
            self.broker
                .apportion(total_supply, conditions, &self.reports);
        } else {
            self.broker.broker_down_tick();
        }

        for (i, zone) in self.zones.iter_mut().enumerate() {
            let condition = if broker_up {
                conditions[i]
            } else if conditions[i] == ZoneCondition::Down {
                // A crashed zone stays crashed whoever else is down.
                ZoneCondition::Down
            } else {
                // From the zone's side a broker outage is
                // indistinguishable from isolation.
                ZoneCondition::Isolated
            };
            if condition == ZoneCondition::Down {
                zone.step_open_loop(&app_demands[i], &disturbs[i], &mut reports[i]);
            } else {
                let supply = self.broker.zone_supply(i, condition);
                zone.step_into(&app_demands[i], supply, &disturbs[i], &mut reports[i]);
            }
        }
    }

    /// Recover zone `i` from a checkpoint, [`Willow::recover`]-style:
    /// the checkpoint supplies control memory, the zone's current state
    /// is the field truth, and the broker ledger is reconciled with the
    /// recovered zone's fresh demand ([`SupplyBroker::rejoin`]).
    ///
    /// # Errors
    /// Whatever [`Willow::recover`] reports, wrapped with the zone index.
    pub fn recover_zone(
        &mut self,
        i: usize,
        checkpoint: WillowSnapshot,
    ) -> Result<(), FederationError> {
        let recovered = Willow::recover(checkpoint, &self.zones[i])
            .map_err(|source| FederationError::Zone { index: i, source })?;
        self.zones[i] = recovered;
        let fresh = self.zone_demand(i);
        self.broker.rejoin(i, fresh);
        Ok(())
    }

    /// Recover the broker from a checkpoint after a broker crash,
    /// reconciling every zone marked reachable against field truth. No
    /// zone is stranded: unreachable zones keep their (restored) ledger
    /// entries and continue on the open-loop protocol.
    ///
    /// # Errors
    /// Rejects a snapshot whose zone count does not match.
    pub fn recover_broker(
        &mut self,
        snapshot: BrokerSnapshot,
        reachable: &[bool],
    ) -> Result<(), FederationError> {
        assert_eq!(
            reachable.len(),
            self.zones.len(),
            "one reachability flag per zone"
        );
        self.broker.recover(snapshot)?;
        for (i, &up) in reachable.iter().enumerate() {
            if up {
                let fresh = self.zone_demand(i);
                self.broker.rejoin(i, fresh);
            }
        }
        Ok(())
    }

    /// Capture the complete mutable state of the federation.
    #[must_use]
    pub fn snapshot(&self) -> FederationSnapshot {
        FederationSnapshot {
            zones: self.zones.iter().map(Willow::snapshot).collect(),
            broker: self.broker.snapshot(),
        }
    }

    /// Rebuild a federation from a snapshot.
    ///
    /// # Errors
    /// Rejects mismatched shapes and whatever zone restoration reports.
    pub fn restore(snapshot: FederationSnapshot) -> Result<Self, FederationError> {
        if snapshot.zones.is_empty() {
            return Err(FederationError::NoZones);
        }
        if snapshot.broker.links.len() != snapshot.zones.len() {
            return Err(FederationError::Shape {
                field: "broker.links",
                found: snapshot.broker.links.len(),
                expected: snapshot.zones.len(),
            });
        }
        let mut zones = Vec::with_capacity(snapshot.zones.len());
        for (index, zs) in snapshot.zones.into_iter().enumerate() {
            zones.push(
                Willow::restore(zs).map_err(|source| FederationError::Zone { index, source })?,
            );
        }
        let broker = SupplyBroker::restore(snapshot.broker)?;
        let n = zones.len();
        Ok(Federation {
            zones,
            broker,
            reports: vec![None; n],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ControllerConfig;
    use crate::server::ServerSpec;
    use willow_topology::Tree;
    use willow_workload::app::{AppId, Application, SIM_APP_CLASSES};

    /// A small 6-server zone controller with one app per server. App ids
    /// start at `app_id_base` per zone — zones are independent controllers,
    /// so ids may repeat across zones (each zone indexes its own demand
    /// slice by id).
    fn zone_willow(app_id_base: u32) -> Willow {
        let tree = Tree::uniform(&[2, 3]);
        let specs: Vec<ServerSpec> = tree
            .leaves()
            .enumerate()
            .map(|(i, leaf)| {
                let app = Application::new(
                    AppId(app_id_base + i as u32),
                    0,
                    &SIM_APP_CLASSES[i % SIM_APP_CLASSES.len()],
                );
                ServerSpec::simulation_default(leaf).with_apps(vec![app])
            })
            .collect();
        Willow::new(tree, specs, ControllerConfig::default()).expect("valid zone")
    }

    fn demands(n: usize, t: u64, scale: f64) -> Vec<Watts> {
        (0..n)
            .map(|i| Watts(scale * (8.0 + ((i as u64 + 3 * t) % 7) as f64)))
            .collect()
    }

    #[test]
    fn single_zone_federation_is_bit_for_bit_standalone() {
        let mut solo = zone_willow(0);
        let mut fed =
            Federation::new(vec![zone_willow(0)], BrokerConfig::default()).expect("one zone");
        let mut solo_report = TickReport::default();
        let mut fed_reports = vec![TickReport::default()];
        let supply = Watts(2_000.0);
        for t in 0..60 {
            let d = demands(6, t, 1.0);
            solo.step_into(&d, supply, &Disturbances::none(), &mut solo_report);
            fed.step(
                supply,
                true,
                &[ZoneCondition::Healthy],
                &[d],
                &[Disturbances::none()],
                &mut fed_reports,
            );
            assert_eq!(
                solo.snapshot(),
                fed.zone(0).snapshot(),
                "diverged at tick {t}"
            );
        }
        assert_eq!(fed.broker().counters().conservation_violations, 0);
    }

    #[test]
    fn split_is_proportional_to_demand_and_conserves() {
        let mut broker = SupplyBroker::new(2, BrokerConfig::default()).expect("broker");
        let conditions = [ZoneCondition::Healthy, ZoneCondition::Healthy];
        let grants = broker.apportion(
            Watts(900.0),
            &conditions,
            &[Some(Watts(100.0)), Some(Watts(200.0))],
        );
        assert!((grants[0].0 - 300.0).abs() < 1e-9, "got {:?}", grants);
        assert!((grants[1].0 - 600.0).abs() < 1e-9, "got {:?}", grants);
        assert_eq!(broker.counters().conservation_violations, 0);
    }

    #[test]
    fn zero_demand_splits_equally() {
        let mut broker = SupplyBroker::new(3, BrokerConfig::default()).expect("broker");
        let conditions = [ZoneCondition::Healthy; 3];
        let reports = [Some(Watts::ZERO); 3];
        let grants = broker.apportion(Watts(300.0), &conditions, &reports);
        for g in grants {
            assert!((g.0 - 100.0).abs() < 1e-9, "got {grants:?}");
        }
    }

    #[test]
    fn stale_report_tightens_only() {
        let mut broker = SupplyBroker::new(2, BrokerConfig::default()).expect("broker");
        // Establish a baseline grant.
        broker.apportion(
            Watts(600.0),
            &[ZoneCondition::Healthy, ZoneCondition::Healthy],
            &[Some(Watts(100.0)), Some(Watts(100.0))],
        );
        let baseline = broker.grants()[0];
        assert!((baseline.0 - 300.0).abs() < 1e-9);
        // Zone 0 goes stale while total supply doubles: its grant may not
        // grow past the last one; the freed watts flow to zone 1.
        let grants = broker.apportion(
            Watts(1200.0),
            &[ZoneCondition::StaleReport, ZoneCondition::Healthy],
            &[None, Some(Watts(100.0))],
        );
        assert!(grants[0] <= baseline, "stale zone loosened: {grants:?}");
        assert!((grants[0].0 + grants[1].0) <= 1200.0 + 1e-9);
        assert_eq!(broker.counters().stale_report_ticks, 1);
    }

    #[test]
    fn unreachable_zone_reserved_then_tripped() {
        let cfg = BrokerConfig {
            missed_grant_threshold: 2,
            fallback_fraction: 0.5,
            ..BrokerConfig::default()
        };
        let mut broker = SupplyBroker::new(2, cfg).expect("broker");
        broker.apportion(
            Watts(600.0),
            &[ZoneCondition::Healthy, ZoneCondition::Healthy],
            &[Some(Watts(100.0)), Some(Watts(100.0))],
        );
        let last = broker.grants()[0];
        // Miss 1: open-loop on the full last grant, reserved first.
        let grants = broker.apportion(
            Watts(600.0),
            &[ZoneCondition::Isolated, ZoneCondition::Healthy],
            &[None, Some(Watts(100.0))],
        );
        assert_eq!(grants[0], last);
        assert!(!broker.links()[0].tripped);
        // Miss 2: trips, self-tightens to half.
        let grants = broker.apportion(
            Watts(600.0),
            &[ZoneCondition::Isolated, ZoneCondition::Healthy],
            &[None, Some(Watts(100.0))],
        );
        assert!((grants[0].0 - last.0 * 0.5).abs() < 1e-9);
        assert!(broker.links()[0].tripped);
        assert_eq!(broker.counters().link_trips, 1);
        // The zone-side protocol value matches the broker's reservation.
        assert_eq!(
            broker.zone_supply(0, ZoneCondition::Isolated),
            broker.grants()[0]
        );
        // Rejoin heals the link and resets the machinery.
        broker.rejoin(0, Watts(90.0));
        assert!(!broker.links()[0].tripped);
        assert_eq!(broker.links()[0].missed_grants, 0);
        assert!((broker.links()[0].last_grant.0 - last.0 * 0.5).abs() < 1e-9);
    }

    #[test]
    fn overdraw_clamps_reservations_and_counts() {
        let mut broker = SupplyBroker::new(2, BrokerConfig::default()).expect("broker");
        broker.apportion(
            Watts(1000.0),
            &[ZoneCondition::Healthy, ZoneCondition::Healthy],
            &[Some(Watts(100.0)), Some(Watts(100.0))],
        );
        // Supply collapses below zone 0's reservation while it is
        // isolated: the ledger clamps (conservation holds), overdraw is
        // counted, and the healthy zone gets what is left.
        let grants = broker.apportion(
            Watts(300.0),
            &[ZoneCondition::Isolated, ZoneCondition::Healthy],
            &[None, Some(Watts(100.0))],
        );
        assert!((grants[0].0 - 300.0).abs() < 1e-9);
        assert_eq!(grants[1], Watts::ZERO);
        assert_eq!(broker.counters().overdraw_ticks, 1);
        assert!(broker.counters().overdraw_watts > 0.0);
        assert_eq!(broker.counters().conservation_violations, 0);
    }

    #[test]
    fn broker_down_tick_advances_the_protocol_fleet_wide() {
        let cfg = BrokerConfig {
            missed_grant_threshold: 3,
            fallback_fraction: 0.5,
            ..BrokerConfig::default()
        };
        let mut broker = SupplyBroker::new(2, cfg).expect("broker");
        broker.apportion(
            Watts(600.0),
            &[ZoneCondition::Healthy, ZoneCondition::Healthy],
            &[Some(Watts(100.0)), Some(Watts(100.0))],
        );
        let last: Vec<Watts> = broker.grants().to_vec();
        for miss in 1..=4u32 {
            let grants = broker.broker_down_tick().to_vec();
            for (z, g) in grants.iter().enumerate() {
                if miss < 3 {
                    assert_eq!(*g, last[z], "miss {miss}");
                } else {
                    assert!((g.0 - last[z].0 * 0.5).abs() < 1e-9, "miss {miss}");
                }
            }
        }
        assert_eq!(broker.counters().broker_down_ticks, 4);
    }

    /// On flat demand Holt's trend is exactly zero and its level is
    /// exactly the input, so the forecast split degenerates to the
    /// reactive proportional split bit-for-bit.
    #[test]
    fn forecast_split_on_flat_demand_matches_reactive() {
        let forecast_cfg = BrokerConfig {
            forecast_apportionment: true,
            ..BrokerConfig::default()
        };
        let mut predictive = SupplyBroker::new(2, forecast_cfg).expect("broker");
        let mut reactive = SupplyBroker::new(2, BrokerConfig::default()).expect("broker");
        let conditions = [ZoneCondition::Healthy, ZoneCondition::Healthy];
        let reports = [Some(Watts(100.0)), Some(Watts(200.0))];
        for _ in 0..10 {
            let a = predictive
                .apportion(Watts(900.0), &conditions, &reports)
                .to_vec();
            let b = reactive
                .apportion(Watts(900.0), &conditions, &reports)
                .to_vec();
            assert_eq!(a, b, "flat demand must split identically");
        }
    }

    /// A zone on a steady ramp is granted *ahead* of its last report:
    /// the forecast split gives the ramping zone strictly more than the
    /// reactive split computed from the same reports.
    #[test]
    fn forecast_split_anticipates_a_demand_ramp() {
        let forecast_cfg = BrokerConfig {
            forecast_apportionment: true,
            ..BrokerConfig::default()
        };
        let mut predictive = SupplyBroker::new(2, forecast_cfg).expect("broker");
        let mut reactive = SupplyBroker::new(2, BrokerConfig::default()).expect("broker");
        let conditions = [ZoneCondition::Healthy, ZoneCondition::Healthy];
        let total = Watts(500.0);
        let mut last = (Watts::ZERO, Watts::ZERO);
        for t in 0..12u32 {
            // Zone 0 ramps 100 → 320 W; zone 1 holds flat at 300 W. The
            // total stays scarce so the split actually arbitrates.
            let reports = [Some(Watts(100.0 + 20.0 * f64::from(t))), Some(Watts(300.0))];
            let a = predictive.apportion(total, &conditions, &reports)[0];
            let b = reactive.apportion(total, &conditions, &reports)[0];
            last = (a, b);
        }
        assert!(
            last.0 > last.1,
            "forecast split must lead the ramp: predictive {:?} <= reactive {:?}",
            last.0,
            last.1
        );
        assert_eq!(predictive.counters().conservation_violations, 0);
    }

    /// While a zone's report is stale its history is frozen: the forecast
    /// keeps extrapolating the last known trend further out each period,
    /// and the tightening-only grant cap still applies on top.
    #[test]
    fn forecast_stale_zone_extrapolates_frozen_history() {
        let forecast_cfg = BrokerConfig {
            forecast_apportionment: true,
            ..BrokerConfig::default()
        };
        let mut broker = SupplyBroker::new(2, forecast_cfg).expect("broker");
        let conditions = [ZoneCondition::Healthy, ZoneCondition::Healthy];
        // Zone 0 demand is *falling*; zone 1 flat.
        for t in 0..8u32 {
            let reports = [Some(Watts(400.0 - 30.0 * f64::from(t))), Some(Watts(200.0))];
            broker.apportion(Watts(500.0), &conditions, &reports);
        }
        let before = broker.forecasts()[0].latest().expect("has history");
        // Report goes stale: the frozen downtrend keeps shrinking zone
        // 0's share of the split, period after period.
        let stale = [ZoneCondition::StaleReport, ZoneCondition::Healthy];
        let g1 = broker.apportion(Watts(500.0), &stale, &[None, Some(Watts(200.0))])[0];
        let g2 = broker.apportion(Watts(500.0), &stale, &[None, Some(Watts(200.0))])[0];
        assert_eq!(
            broker.forecasts()[0].latest(),
            Some(before),
            "history frozen"
        );
        assert!(g2 < g1, "deeper staleness must extrapolate further down");
        assert_eq!(broker.counters().conservation_violations, 0);
    }

    /// Pre-forecast broker checkpoints carry no `forecasts` key: they
    /// must still parse and restore, with predictions falling back to
    /// the reactive rule until the rings refill.
    #[test]
    fn broker_snapshot_without_forecasts_restores() {
        let mut broker = SupplyBroker::new(2, BrokerConfig::default()).expect("broker");
        broker.apportion(
            Watts(600.0),
            &[ZoneCondition::Healthy, ZoneCondition::Healthy],
            &[Some(Watts(100.0)), Some(Watts(200.0))],
        );
        let json = serde_json::to_string(&broker.snapshot()).expect("serialize");
        let needle = ",\"forecasts\":";
        let start = json.find(needle).expect("forecasts key present");
        let stripped = format!("{}}}", &json[..start]);
        let snap: BrokerSnapshot = serde_json::from_str(&stripped).expect("legacy parse");
        assert!(snap.forecasts.is_empty());
        let restored = SupplyBroker::restore(snap).expect("restore");
        assert_eq!(restored.links(), broker.links());
        assert!(restored.forecasts().iter().all(|s| s.latest().is_none()));
    }

    #[test]
    fn broker_snapshot_round_trips_through_json() {
        let mut broker = SupplyBroker::new(3, BrokerConfig::default()).expect("broker");
        broker.apportion(
            Watts(900.0),
            &[
                ZoneCondition::Healthy,
                ZoneCondition::StaleReport,
                ZoneCondition::Isolated,
            ],
            &[Some(Watts(50.0)), None, None],
        );
        let snap = broker.snapshot();
        let json = serde_json::to_string(&snap).expect("serializes");
        let back: BrokerSnapshot = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, snap);
        let restored = SupplyBroker::restore(back).expect("restores");
        assert_eq!(restored.links(), broker.links());
        assert_eq!(restored.counters(), broker.counters());
        assert_eq!(restored.grants(), broker.grants());
        assert_eq!(restored.forecasts(), broker.forecasts());
    }

    #[test]
    fn federation_snapshot_restore_locksteps() {
        let mut fed = Federation::new(
            vec![zone_willow(0), zone_willow(0)],
            BrokerConfig::default(),
        )
        .expect("two zones");
        let mut reports = vec![TickReport::default(), TickReport::default()];
        let conditions = [ZoneCondition::Healthy, ZoneCondition::Healthy];
        let total = Watts(4_000.0);
        for t in 0..20 {
            let d = vec![demands(6, t, 1.0), demands(6, t, 1.4)];
            let dist = vec![Disturbances::none(), Disturbances::none()];
            fed.step(total, true, &conditions, &d, &dist, &mut reports);
        }
        let snap = fed.snapshot();
        let mut twin = Federation::restore(snap.clone()).expect("restores");
        assert_eq!(twin.snapshot(), snap);
        for t in 20..40 {
            let d = vec![demands(6, t, 1.0), demands(6, t, 1.4)];
            let dist = vec![Disturbances::none(), Disturbances::none()];
            fed.step(total, true, &conditions, &d, &dist, &mut reports);
            twin.step(total, true, &conditions, &d, &dist, &mut reports);
        }
        assert_eq!(twin.snapshot(), fed.snapshot());
    }

    #[test]
    fn broker_crash_strands_no_zone_and_recovers() {
        let mut fed = Federation::new(
            vec![zone_willow(0), zone_willow(0)],
            BrokerConfig::default(),
        )
        .expect("two zones");
        let mut reports = vec![TickReport::default(), TickReport::default()];
        let healthy = [ZoneCondition::Healthy, ZoneCondition::Healthy];
        let total = Watts(4_000.0);
        let mut checkpoint = fed.broker().snapshot();
        for t in 0..30 {
            let d = vec![demands(6, t, 1.0), demands(6, t, 1.2)];
            let dist = vec![Disturbances::none(), Disturbances::none()];
            let broker_up = !(10..16).contains(&t);
            fed.step(total, broker_up, &healthy, &d, &dist, &mut reports);
            if t == 9 {
                checkpoint = fed.broker().snapshot();
            }
            if t == 15 {
                // First tick back up: restore the ledger and reconcile.
                fed.recover_broker(checkpoint.clone(), &[true, true])
                    .expect("recovers");
            }
        }
        assert_eq!(fed.broker().counters().broker_down_ticks, 6);
        assert_eq!(fed.broker().counters().conservation_violations, 0);
        // Post-recovery apportionment resumed: grants track demand again.
        assert!(fed.broker().grants().iter().all(|g| g.0 > 0.0));
    }

    #[test]
    fn config_validation() {
        assert!(SupplyBroker::new(0, BrokerConfig::default()).is_err());
        assert!(SupplyBroker::new(
            2,
            BrokerConfig {
                missed_grant_threshold: 0,
                fallback_fraction: 0.5,
                ..BrokerConfig::default()
            }
        )
        .is_err());
        assert!(SupplyBroker::new(
            2,
            BrokerConfig {
                missed_grant_threshold: 3,
                fallback_fraction: 0.0,
                ..BrokerConfig::default()
            }
        )
        .is_err());
        assert!(SupplyBroker::new(
            2,
            BrokerConfig {
                missed_grant_threshold: 3,
                fallback_fraction: 1.5,
                ..BrokerConfig::default()
            }
        )
        .is_err());
    }
}
