//! The live-ops command plane: queued operator commands executed at a
//! fixed point in the tick — after measurement, before supply adaptation —
//! so every reconfiguration lands at a deterministic, replayable position
//! in the control trajectory.
//!
//! Commands are submitted with [`Willow::submit_command`] and processed
//! FIFO. Each command is validated (check-then-act) against its
//! preconditions before any state is touched; a rejected command changes
//! nothing and reports a typed [`CommandError`]. A
//! [`Command::Drain`] is the one *multi-tick* command: it evacuates what
//! it can place each tick (reporting the rest as stranded) and stays
//! pending until the server is empty, at which point it fences the server
//! and completes. Pending drains do not block commands queued behind them.
//!
//! Online topology edits (server add/remove) grow the per-node state
//! arrays and rebuild the per-stage scratch; the queue itself is part of
//! the checkpointed state, so commands in flight survive a controller
//! crash (see [`Willow::recover`]).

use super::consolidate::ConsolidateStage;
use super::demand::{DeficitItem, DemandStage};
use super::supply::SupplyStage;
use super::Willow;
use crate::command::{
    Command, CommandError, CommandId, CommandOutcome, CommandStatus, PendingCommand,
};
use crate::migration::{MigrationReason, TickReport};
use crate::server::{DemandSmoother, FenceState, ServerSpec, ServerState};
use willow_thermal::model::decay_factor;
use willow_thermal::units::Watts;
use willow_topology::NodeId;

impl Willow {
    /// Queue `command` for processing at the next tick's command point
    /// (between the measure and supply stages). Returns the correlation id
    /// echoed in the eventual [`CommandOutcome`] on the report of the tick
    /// in which the command reaches a terminal state.
    pub fn submit_command(&mut self, command: Command) -> CommandId {
        let id = CommandId(self.next_command_id);
        self.next_command_id += 1;
        self.pending.push(PendingCommand {
            id,
            command,
            issued_tick: self.tick,
        });
        id
    }

    /// Commands still in flight: queued but not yet processed, or drains
    /// that have not emptied their server yet.
    #[must_use]
    pub fn pending_commands(&self) -> &[PendingCommand] {
        &self.pending
    }

    /// The next correlation id [`Willow::submit_command`] will assign.
    #[must_use]
    pub fn next_command_id(&self) -> u64 {
        self.next_command_id
    }

    /// Whether adaptation is paused by [`Command::Pause`]: measurement,
    /// command processing and physics keep running, budgets stay frozen.
    #[must_use]
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// Process the pending command queue, FIFO and non-blocking: every
    /// command is attempted each tick in submission order; completed and
    /// rejected commands leave the queue with an outcome on `report`,
    /// unfinished drains stay for the next tick. With an empty queue this
    /// is a single branch — the steady-state tick stays allocation-free
    /// and bit-for-bit identical to a controller without a command plane.
    pub(super) fn process_commands(&mut self, report: &mut TickReport) {
        if self.pending.is_empty() {
            return;
        }
        let tick = self.tick;
        let mut i = 0;
        while i < self.pending.len() {
            let PendingCommand {
                id,
                command,
                issued_tick,
            } = self.pending[i].clone();
            let status = match &command {
                Command::AddServer { parent, name } => {
                    Some(match self.exec_add_server(*parent, name) {
                        Ok(()) => {
                            report.topology_changed = true;
                            CommandStatus::Applied
                        }
                        Err(e) => CommandStatus::Rejected(e),
                    })
                }
                Command::RemoveServer { server } => Some(match self.exec_remove_server(*server) {
                    Ok(()) => {
                        report.topology_changed = true;
                        CommandStatus::Applied
                    }
                    Err(e) => CommandStatus::Rejected(e),
                }),
                Command::Drain { server } => match self.exec_drain(*server, tick, report) {
                    Ok(true) => Some(CommandStatus::Applied),
                    Ok(false) => None, // still evacuating; retry next tick
                    Err(e) => Some(CommandStatus::Rejected(e)),
                },
                Command::SwapPacker { packer } => {
                    self.config.packer = *packer;
                    self.policies.packer = willow_binpack::packer_for(*packer);
                    Some(CommandStatus::Applied)
                }
                Command::Pause => {
                    self.paused = true;
                    Some(CommandStatus::Applied)
                }
                Command::Resume => {
                    self.paused = false;
                    Some(CommandStatus::Applied)
                }
            };
            match status {
                Some(status) => {
                    if status.is_applied() {
                        report.commands_applied += 1;
                        self.tel.commands_applied.add(1);
                    } else {
                        report.commands_rejected += 1;
                        self.tel.commands_rejected.add(1);
                    }
                    self.tel
                        .command_latency
                        .record(tick.saturating_sub(issued_tick) as f64);
                    report.command_outcomes.push(CommandOutcome {
                        id,
                        command,
                        tick,
                        status,
                    });
                    self.pending.remove(i);
                }
                None => i += 1,
            }
        }
        // Drain migrations, fencing and topology edits all move leaf-level
        // demand around; re-aggregate so the supply stage divides against
        // fresh interior sums. On a tick whose commands changed nothing
        // this recomputes the sums measurement just wrote — bit-neutral.
        self.power.aggregate_demands(&self.tree);
    }

    /// Insert a new leaf under `parent`, grow every per-node array, and
    /// bring a simulation-default server online at the new slot. The new
    /// server starts active and empty with a zero budget; it receives its
    /// first real budget at the next supply tick.
    fn exec_add_server(&mut self, parent: NodeId, name: &str) -> Result<(), CommandError> {
        let leaf = self.tree.insert_leaf(parent, name)?;
        let n = self.tree.len();
        self.power.ensure_len(n);
        self.fabric.ensure_len(n);
        if self.local_cp.len() < n {
            self.local_cp.resize(n, Watts::ZERO);
        }
        if self.leaf_server.len() < n {
            self.leaf_server.resize(n, None);
        }
        // A reused tombstone slot may carry state from the server that
        // used to live there.
        let li = leaf.index();
        self.power.cp[li] = Watts::ZERO;
        self.power.tp[li] = Watts::ZERO;
        self.power.tp_old[li] = Watts::ZERO;
        self.power.cap[li] = Watts::ZERO;
        self.power.reduced[li] = false;
        self.local_cp[li] = Watts::ZERO;
        debug_assert!(self.leaf_server[li].is_none(), "slot cleared at removal");
        self.leaf_server[li] = Some(self.servers.len());
        let spec = ServerSpec::simulation_default(leaf);
        let state = ServerState::from_spec_with_smoother(
            &spec,
            DemandSmoother::new(self.config.smoother, self.config.alpha),
        );
        self.watchdog.push(super::supply::Watchdog::default());
        self.accepted_temp.push(state.thermal.temperature());
        self.decay_dd
            .push(decay_factor(state.thermal.params(), self.config.delta_d));
        self.decay_ds
            .push(decay_factor(state.thermal.params(), self.config.delta_s()));
        self.servers.push(state);
        self.planning.push_server();
        self.rebuild_stage_scratch();
        Ok(())
    }

    /// Permanently retire a fenced, empty server: remove its tree leaf
    /// (slot becomes a reusable tombstone), zero its per-node state, and
    /// mark its server slot [`FenceState::Retired`] — server indices are
    /// stable for the life of the run, so the slot is never reused.
    fn exec_remove_server(&mut self, server: usize) -> Result<(), CommandError> {
        if server >= self.servers.len() {
            return Err(CommandError::UnknownServer(server));
        }
        match self.servers[server].fence {
            FenceState::Retired => return Err(CommandError::Retired(server)),
            FenceState::Active | FenceState::Draining => {
                return Err(CommandError::NotFenced(server))
            }
            FenceState::Fenced => {}
        }
        if !self.servers[server].apps.is_empty() {
            return Err(CommandError::NotEmpty(server));
        }
        let node = self.servers[server].node;
        self.tree.remove_leaf(node)?;
        // The edit committed; everything below is infallible.
        let li = node.index();
        self.servers[server].fence = FenceState::Retired;
        self.leaf_server[li] = None;
        self.power.cp[li] = Watts::ZERO;
        self.power.tp[li] = Watts::ZERO;
        self.power.tp_old[li] = Watts::ZERO;
        self.power.cap[li] = Watts::ZERO;
        self.power.reduced[li] = false;
        self.local_cp[li] = Watts::ZERO;
        // A tripped watchdog on a retired row would keep counting toward
        // `fallback_servers` forever; the machine is gone, clear it.
        self.watchdog[server] = crate::control::supply::Watchdog::default();
        self.rebuild_stage_scratch();
        Ok(())
    }

    /// One tick of a graceful drain. Marks the server
    /// [`FenceState::Draining`], evacuates every placeable app through the
    /// transactional migration machinery (largest first, siblings first),
    /// and — once the server is empty — sleeps and fences it with its
    /// budget and cap forced to zero. Returns `Ok(true)` when fenced,
    /// `Ok(false)` while apps remain (counted on
    /// [`TickReport::stranded_apps`]; the drain retries next tick).
    fn exec_drain(
        &mut self,
        server: usize,
        tick: u64,
        report: &mut TickReport,
    ) -> Result<bool, CommandError> {
        if server >= self.servers.len() {
            return Err(CommandError::UnknownServer(server));
        }
        match self.servers[server].fence {
            FenceState::Retired => return Err(CommandError::Retired(server)),
            FenceState::Fenced => return Ok(true), // idempotent
            FenceState::Active | FenceState::Draining => {}
        }
        self.servers[server].fence = FenceState::Draining;

        if !self.servers[server].apps.is_empty() {
            let mut stage = std::mem::take(&mut self.consolidate_stage);
            self.evacuate_for_drain(server, tick, &mut stage, report);
            self.consolidate_stage = stage;
        }

        if self.servers[server].apps.is_empty() {
            if self.servers[server].active {
                self.sleep_server(server, tick);
            }
            self.servers[server].fence = FenceState::Fenced;
            // Zero the applied budget immediately — a fenced server must
            // never draw power again, not even until the next supply tick.
            let li = self.servers[server].node.index();
            self.power.tp[li] = Watts::ZERO;
            self.power.cap[li] = Watts::ZERO;
            Ok(true)
        } else {
            report.stranded_apps += self.servers[server].apps.len();
            Ok(false)
        }
    }

    /// Best-effort evacuation of a draining server: apps largest-first,
    /// each first-fit into the first eligible target with headroom —
    /// siblings before the rest of the data center. Apps in retry backoff,
    /// without a fitting target, or whose migration fails its fault roll
    /// simply stay put for this tick; the caller reports them stranded.
    fn evacuate_for_drain(
        &mut self,
        server: usize,
        tick: u64,
        stage: &mut ConsolidateStage,
        report: &mut TickReport,
    ) {
        stage.evac_items.clear();
        stage.evac_items.extend(
            self.servers[server]
                .apps
                .iter()
                .enumerate()
                .map(|(i, app)| DeficitItem {
                    server,
                    app: app.id,
                    demand: self.servers[server].app_demand[i],
                    reason: MigrationReason::Drain,
                }),
        );
        stage.evac_order.clear();
        stage.evac_order.extend(0..stage.evac_items.len());
        stage.evac_order.sort_unstable_by(|&a, &b| {
            stage.evac_items[b]
                .demand
                .0
                .total_cmp(&stage.evac_items[a].demand.0)
                .then(a.cmp(&b))
        });

        // Eligible bins, sibling leaves first, then leaf order. The
        // draining server itself is never eligible (its fence is set).
        let leaf = self.servers[server].node;
        stage.evac_bins.clear();
        stage.evac_bins.extend(
            self.tree
                .siblings(leaf)
                .filter(|&l| self.target_eligible(l)),
        );
        let n_siblings = stage.evac_bins.len();
        for l in self.tree.leaves() {
            if l != leaf && self.target_eligible(l) && !stage.evac_bins[..n_siblings].contains(&l) {
                stage.evac_bins.push(l);
            }
        }

        for oi in 0..stage.evac_order.len() {
            let item = stage.evac_items[stage.evac_order[oi]];
            if self.in_backoff(item.app, tick) {
                continue; // stranded this tick; retried once backoff clears
            }
            // First fit against *live* remaining capacity: each committed
            // migration already updated the target's CP.
            let target = stage.evac_bins.iter().copied().find(|&l| {
                self.bin_capacity(l).0 + 1e-12 >= self.effective_size(item.demand)
                    && !self.would_pingpong(item.app, l, tick)
            });
            if let Some(target) = target {
                // A failed attempt (injected reject/abort) leaves the app
                // at the source, in backoff — stranded, never lost.
                let _ = self.attempt_migration(&item, target, tick, &mut report.migrations);
            }
        }
    }

    /// Rebuild the per-stage scratch buffers after a topology or roster
    /// change, so their pre-sized capacities match the new shape. This
    /// allocates — acceptable on the rare reconfiguration tick; idle-queue
    /// ticks never reach here.
    fn rebuild_stage_scratch(&mut self) {
        self.supply_stage = SupplyStage::for_tree(&self.tree);
        self.demand_stage = DemandStage::for_tree(&self.tree);
        self.consolidate_stage = ConsolidateStage::for_tree(&self.tree, self.servers.len());
        self.physics_stage = super::physics::PhysicsStage::for_tree(&self.tree, self.servers.len());
    }
}
