//! Pipeline stage 1 — measurement: raw per-app demands are smoothed
//! (Eq. 4) into leaf `CP` values and aggregated up the tree.
//!
//! The per-server half (demand writes, smoothing, leaf `CP` stores) shards
//! across the worker pool: each roster row is touched by exactly one shard,
//! and the arena-indexed `local_cp`/`power.cp` stores are gated on slot
//! ownership (`leaf_server[leaf] == Some(si)`) so a retired row whose leaf
//! slot was reused by a later-added server can never race — or clobber —
//! the live owner's entry. The upward aggregation stays serial (it is one
//! `O(nodes)` pass over contiguous per-level slices).

use super::shard::{shard_range, RawSlice};
use super::Willow;
use std::sync::atomic::{AtomicUsize, Ordering};
use willow_thermal::units::Watts;

impl Willow {
    /// Smooth raw demands into leaf `CP` values and aggregate upward. A
    /// server whose report is lost keeps running on its own fresh view
    /// (`local_cp`) while the hierarchy keeps the stale `power.cp` entry.
    #[allow(unsafe_code)] // disjoint shard slicing; see `super::shard`
    pub(super) fn measure(&mut self, app_demand: &[Watts]) {
        let n = self.servers.len();
        let threads = self.pool.threads();
        let reports_lost = AtomicUsize::new(0);
        debug_assert_eq!(self.planning.leaves.len(), n, "planning tracks the roster");
        {
            let servers = RawSlice::new(&mut self.servers);
            let local_cp = RawSlice::new(&mut self.local_cp);
            let cp = RawSlice::new(&mut self.power.cp);
            let planning = RawSlice::new(&mut self.planning.leaves);
            let disturb = &self.disturb;
            let leaf_server = &self.leaf_server;
            let lost = &reports_lost;
            self.pool.run(&|k| {
                let range = shard_range(n, threads, k);
                // SAFETY: shard ranges over server indices are pairwise
                // disjoint, and `servers` is indexed by server.
                let servers = unsafe { servers.range_mut(range.clone()) };
                // SAFETY: `planning.leaves` is indexed by server like the
                // roster itself, so this shard's sub-slice is disjoint too.
                let plan_leaves = unsafe { planning.range_mut(range.clone()) };
                for (off, server) in servers.iter_mut().enumerate() {
                    let si = range.start + off;
                    let leaf = server.node.index();
                    // Slot-ownership gate for the arena-indexed stores: a
                    // retired row must never write the (possibly reused)
                    // slot — only the live owner does, which also keeps the
                    // hierarchy's stale view intact under report loss.
                    let owns = leaf_server[leaf] == Some(si);
                    let mut observed = Watts::ZERO;
                    if server.active {
                        for (i, app) in server.apps.iter().enumerate() {
                            let idx = app.id.0 as usize;
                            assert!(
                                idx < app_demand.len(),
                                "demand vector too short for {}",
                                app.id
                            );
                            server.app_demand[i] = app_demand[idx];
                        }
                        let raw = server.raw_demand();
                        let smoothed = server.smoother.observe(raw);
                        observed = smoothed;
                        debug_assert!(owns, "an active server owns its leaf slot");
                        // SAFETY: exactly one roster row owns any leaf
                        // slot, so these scattered writes are race-free.
                        unsafe {
                            *local_cp.get_mut(leaf) = smoothed;
                        }
                        if disturb.report_lost(si) {
                            lost.fetch_add(1, Ordering::Relaxed);
                        } else {
                            // SAFETY: as above — sole owner of `leaf`.
                            unsafe {
                                *cp.get_mut(leaf) = smoothed;
                            }
                        }
                    } else if owns {
                        // SAFETY: as above — sole owner of `leaf`.
                        unsafe {
                            *local_cp.get_mut(leaf) = Watts::ZERO;
                            *cp.get_mut(leaf) = Watts::ZERO;
                        }
                    }
                    // Planning seam: feed this server's demand series —
                    // the smoothed view for active servers, zero while
                    // asleep/retired. Per-row like everything above, so
                    // serial and sharded runs observe identical sequences.
                    plan_leaves[off].observe(observed);
                    // Migration costs are charged for exactly one period.
                    server.pending_cost = Watts::ZERO;
                }
            });
        }
        // Integer addition commutes: the relaxed total matches the serial
        // count at every thread count.
        self.counters.reports_lost += reports_lost.into_inner();
        self.power.aggregate_demands(&self.tree);
    }

    /// Leaf-local measurement with the controller down: smoothing still
    /// happens (the machine observes its own load) and `local_cp` stays
    /// fresh, but nothing reaches the hierarchy — `power.cp` keeps the
    /// controller's last view and no control messages are exchanged.
    /// Stays serial: the open-loop path models per-leaf firmware, not the
    /// controller's hot loop.
    pub(super) fn measure_open_loop(&mut self, app_demand: &[Watts]) {
        for (si, server) in self.servers.iter_mut().enumerate() {
            // Ownership gate as in the closed-loop path: a retired row's
            // recycled slot belongs to the live replacement server.
            let owns = self.leaf_server[server.node.index()] == Some(si);
            if server.active {
                for (i, app) in server.apps.iter().enumerate() {
                    let idx = app.id.0 as usize;
                    assert!(
                        idx < app_demand.len(),
                        "demand vector too short for {}",
                        app.id
                    );
                    server.app_demand[i] = app_demand[idx];
                }
                let raw = server.raw_demand();
                let smoothed = server.smoother.observe(raw);
                if owns {
                    self.local_cp[server.node.index()] = smoothed;
                }
            } else if owns {
                self.local_cp[server.node.index()] = Watts::ZERO;
            }
            server.pending_cost = Watts::ZERO;
        }
    }
}
