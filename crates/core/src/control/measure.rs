//! Pipeline stage 1 — measurement: raw per-app demands are smoothed
//! (Eq. 4) into leaf `CP` values and aggregated up the tree.

use super::Willow;
use willow_thermal::units::Watts;

impl Willow {
    /// Smooth raw demands into leaf `CP` values and aggregate upward. A
    /// server whose report is lost keeps running on its own fresh view
    /// (`local_cp`) while the hierarchy keeps the stale `power.cp` entry.
    pub(super) fn measure(&mut self, app_demand: &[Watts]) {
        for (si, server) in self.servers.iter_mut().enumerate() {
            if server.active {
                for (i, app) in server.apps.iter().enumerate() {
                    let idx = app.id.0 as usize;
                    assert!(
                        idx < app_demand.len(),
                        "demand vector too short for {}",
                        app.id
                    );
                    server.app_demand[i] = app_demand[idx];
                }
                let raw = server.raw_demand();
                let smoothed = server.smoother.observe(raw);
                self.local_cp[server.node.index()] = smoothed;
                if self.disturb.report_lost(si) {
                    self.counters.reports_lost += 1;
                } else {
                    self.power.cp[server.node.index()] = smoothed;
                }
            } else {
                self.local_cp[server.node.index()] = Watts::ZERO;
                self.power.cp[server.node.index()] = Watts::ZERO;
            }
            // Migration costs are charged for exactly one period.
            server.pending_cost = Watts::ZERO;
        }
        self.power.aggregate_demands(&self.tree);
    }

    /// Leaf-local measurement with the controller down: smoothing still
    /// happens (the machine observes its own load) and `local_cp` stays
    /// fresh, but nothing reaches the hierarchy — `power.cp` keeps the
    /// controller's last view and no control messages are exchanged.
    pub(super) fn measure_open_loop(&mut self, app_demand: &[Watts]) {
        for server in self.servers.iter_mut() {
            if server.active {
                for (i, app) in server.apps.iter().enumerate() {
                    let idx = app.id.0 as usize;
                    assert!(
                        idx < app_demand.len(),
                        "demand vector too short for {}",
                        app.id
                    );
                    server.app_demand[i] = app_demand[idx];
                }
                let raw = server.raw_demand();
                let smoothed = server.smoother.observe(raw);
                self.local_cp[server.node.index()] = smoothed;
            } else {
                self.local_cp[server.node.index()] = Watts::ZERO;
            }
            server.pending_cost = Watts::ZERO;
        }
    }
}
