//! Sampled telemetry handles for the controller's hot path.

/// Telemetry spans and gauges are *sampled*: each phase's wall time (and
/// the per-level deficit / fabric gauges) is recorded at most once per
/// this many ticks. Clock reads cost ~20 ns each; timing five phases
/// every tick would burn ~40 % of a small-topology tick, where sampling
/// keeps the instrumented overhead under the 3 % budget while the
/// histograms still accumulate one representative sample per phase per
/// window. Counters are exact — they are plain atomic adds.
pub const SPAN_SAMPLE_PERIOD: u64 = 16;

/// Sampling slots: five phase spans plus the gauge refresh.
pub(super) const SLOT_AGGREGATE: usize = 0;
pub(super) const SLOT_ALLOCATE: usize = 1;
pub(super) const SLOT_PLAN_MIGRATIONS: usize = 2;
pub(super) const SLOT_CONSOLIDATE: usize = 3;
pub(super) const SLOT_THERMAL_UPDATE: usize = 4;
pub(super) const SLOT_GAUGES: usize = 5;

/// Telemetry handles for the controller's hot path. All handles come from
/// one registry via [`Willow::attach_telemetry`](super::Willow::attach_telemetry);
/// the `Default` value is fully disabled, so an unattached controller pays
/// one branch per record. Handles are plain atomics — recording allocates
/// nothing, preserving the zero-allocation steady-state tick invariant
/// with telemetry enabled.
#[derive(Debug, Default)]
pub(crate) struct ControllerTelemetry {
    /// Kept for span start tokens (`TelemetryRegistry::now`).
    pub(super) registry: willow_telemetry::TelemetryRegistry,
    pub(super) span_aggregate: willow_telemetry::Histogram,
    pub(super) span_allocate: willow_telemetry::Histogram,
    pub(super) span_plan_migrations: willow_telemetry::Histogram,
    pub(super) span_consolidate: willow_telemetry::Histogram,
    pub(super) span_thermal_update: willow_telemetry::Histogram,
    pub(super) migrations: willow_telemetry::Counter,
    pub(super) migration_aborts: willow_telemetry::Counter,
    pub(super) migration_rejects: willow_telemetry::Counter,
    pub(super) watchdog_trips: willow_telemetry::Counter,
    pub(super) commands_applied: willow_telemetry::Counter,
    pub(super) commands_rejected: willow_telemetry::Counter,
    /// Ticks between command submission and its terminal outcome.
    pub(super) command_latency: willow_telemetry::Histogram,
    /// One budget-deficit gauge per tree level (index = level).
    pub(super) level_deficit: Vec<willow_telemetry::Gauge>,
    pub(super) fabric: willow_network::FabricTelemetry,
    /// Last window each slot was sampled in (`0` = never); see
    /// [`SPAN_SAMPLE_PERIOD`].
    pub(super) sampled_window: [u64; 6],
}

impl ControllerTelemetry {
    pub(super) fn register(registry: &willow_telemetry::TelemetryRegistry, height: u8) -> Self {
        let span = |phase: &str| {
            registry.duration_histogram(
                &format!("willow_controller_phase_{phase}_seconds"),
                "Wall time of this controller phase (sampled once per window)",
            )
        };
        ControllerTelemetry {
            span_aggregate: span("aggregate"),
            span_allocate: span("allocate"),
            span_plan_migrations: span("plan_migrations"),
            span_consolidate: span("consolidate"),
            span_thermal_update: span("thermal_update"),
            migrations: registry.counter(
                "willow_controller_migrations_total",
                "Migrations executed (both reasons)",
            ),
            migration_aborts: registry.counter(
                "willow_controller_migration_aborts_total",
                "Migration attempts aborted mid-flight",
            ),
            migration_rejects: registry.counter(
                "willow_controller_migration_rejects_total",
                "Migration attempts refused admission by the destination",
            ),
            watchdog_trips: registry.counter(
                "willow_controller_watchdog_trips_total",
                "Stale-directive watchdog trips",
            ),
            commands_applied: registry.counter(
                "willow_commands_applied_total",
                "Live-ops commands that committed",
            ),
            commands_rejected: registry.counter(
                "willow_commands_rejected_total",
                "Live-ops commands rejected with a typed error",
            ),
            // Buckets 2^0 .. 2^11 ticks: most commands land within one
            // tick; multi-tick drains under faults fill the tail.
            command_latency: registry.histogram(
                "willow_command_latency_ticks",
                "Ticks between a command's submission and its terminal outcome",
                0,
                12,
            ),
            level_deficit: (0..=height)
                .map(|level| {
                    registry.gauge(
                        &format!("willow_controller_level_deficit_watts_l{level}"),
                        "Summed budget deficit [CP - TP]+ across this tree level",
                    )
                })
                .collect(),
            fabric: willow_network::FabricTelemetry::register(registry),
            registry: registry.clone(),
            sampled_window: [0; 6],
        }
    }

    /// True when `slot` has not been sampled yet in `tick`'s window; marks
    /// it sampled. Always false when the registry is disabled.
    pub(super) fn due(&mut self, slot: usize, tick: u64) -> bool {
        if !self.registry.is_enabled() {
            return false;
        }
        // +1 so the very first window differs from the never-sampled 0.
        let window = tick / SPAN_SAMPLE_PERIOD + 1;
        if self.sampled_window[slot] == window {
            return false;
        }
        self.sampled_window[slot] = window;
        true
    }

    /// Span start token for `slot`: a clock read on the window's first
    /// opportunity, `None` (making `record_since` a no-op) otherwise.
    pub(super) fn span_start(&mut self, slot: usize, tick: u64) -> Option<std::time::Instant> {
        if self.due(slot, tick) {
            self.registry.now()
        } else {
            None
        }
    }
}
