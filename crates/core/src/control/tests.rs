//! Behavioral tests of the closed-loop control pipeline: constructor
//! validation, supply/demand adaptation, consolidation, thermal behavior
//! and the paper's properties. Fault-injection and crash-recovery tests
//! live in `super::fault_tests`.

use super::testutil::{demands, small_setup};
use super::*;
use crate::config::{AllocationPolicy, ReducedTargetRule};
use crate::migration::MigrationReason;
use willow_workload::app::{Application, SIM_APP_CLASSES};

#[test]
fn constructor_validates() {
    let (tree, specs, _) = small_setup(1);
    assert!(Willow::new(tree.clone(), specs.clone(), ControllerConfig::default()).is_ok());
    // Too few specs.
    let err = Willow::new(
        tree.clone(),
        specs[..2].to_vec(),
        ControllerConfig::default(),
    );
    assert!(matches!(err, Err(WillowError::LeafCoverage { .. })));
    // Duplicate leaf.
    let mut dup = specs.clone();
    dup[1].node = dup[0].node;
    assert!(matches!(
        Willow::new(tree.clone(), dup, ControllerConfig::default()),
        Err(WillowError::DuplicateLeaf(_))
    ));
    // Duplicate app id.
    let mut dup_app = specs.clone();
    let a = dup_app[0].apps[0].clone();
    dup_app[1].apps = vec![a];
    assert!(matches!(
        Willow::new(tree.clone(), dup_app, ControllerConfig::default()),
        Err(WillowError::DuplicateApp(_))
    ));
    // Non-leaf spec.
    let mut non_leaf = specs;
    non_leaf[0].node = tree.root();
    assert!(matches!(
        Willow::new(tree, non_leaf, ControllerConfig::default()),
        Err(WillowError::NotALeaf(_))
    ));
}

#[test]
fn ample_supply_no_migrations_no_drops() {
    let (tree, specs, n_apps) = small_setup(1);
    let mut w = Willow::new(tree, specs, ControllerConfig::default()).unwrap();
    for _ in 0..20 {
        let r = w.step(&demands(n_apps, 10.0), Watts(10_000.0));
        assert_eq!(r.dropped_demand, Watts(0.0));
        assert_eq!(
            r.migrations_by_reason(MigrationReason::Demand),
            0,
            "no deficit ⇒ no demand-driven migrations"
        );
        assert_eq!(r.pingpongs(), 0);
    }
}

#[test]
fn budgets_allocated_proportionally_to_demand() {
    let (tree, specs, n_apps) = small_setup(1);
    let mut w = Willow::new(tree, specs, ControllerConfig::default()).unwrap();
    // Unequal demands; ample supply: each server's budget ≥ demand.
    let mut d = demands(n_apps, 10.0);
    d[0] = Watts(40.0);
    let r = w.step(&d, Watts(10_000.0));
    assert!(r.server_budget[0] >= Watts(40.0));
    for i in 1..4 {
        assert!(r.server_budget[i] >= Watts(10.0));
    }
}

#[test]
fn supply_plunge_triggers_migration_under_equal_share() {
    // The testbed scenario (§V-C4): equal-share budgets, a supply
    // plunge leaves the loaded server deficient while idle servers keep
    // surplus ⇒ demand-driven migration.
    let (tree, specs, n_apps) = small_setup(2);
    let mut cfg = ControllerConfig::default();
    cfg.margin = Watts(5.0);
    cfg.eta1 = 1; // supply adaptation every tick
    cfg.eta2 = 2;
    cfg.consolidation_threshold = 0.0; // isolate demand-driven behaviour
    cfg.allocation = AllocationPolicy::EqualShare;
    let mut w = Willow::new(tree, specs, cfg).unwrap();
    // Server 0 hosts apps 0, 1 at 60 W each; everyone else idles at 10 W.
    let mut d = demands(n_apps, 10.0);
    d[0] = Watts(60.0);
    d[1] = Watts(60.0);
    let r = w.step(&d, Watts(800.0)); // 200 W each: no deficit
    assert_eq!(r.migrations_by_reason(MigrationReason::Demand), 0);
    // Plunge: 100 W each. Server 0 (demand 120) is deficient; siblings
    // (demand 20) have surplus 75 ≥ app's effective 63.
    let r = w.step(&d, Watts(400.0));
    let demand_migs: Vec<_> = r
        .migrations
        .iter()
        .filter(|m| m.reason == MigrationReason::Demand)
        .collect();
    assert!(!demand_migs.is_empty(), "plunge must trigger migration");
    assert!(
        demand_migs.iter().all(|m| m.from == w.servers()[0].node),
        "migrations must come off the loaded server"
    );
}

#[test]
fn migrations_prefer_siblings() {
    // Server 0 in deficit; both its sibling (server 1) and the other pod
    // have surplus ⇒ the migration must use the sibling (local).
    let (tree, specs, n_apps) = small_setup(2);
    let mut cfg = ControllerConfig::default();
    cfg.margin = Watts(5.0);
    cfg.eta1 = 1;
    cfg.eta2 = 2;
    cfg.consolidation_threshold = 0.0;
    cfg.allocation = AllocationPolicy::EqualShare;
    let mut w = Willow::new(tree, specs, cfg).unwrap();
    let mut d = demands(n_apps, 10.0);
    d[0] = Watts(60.0);
    d[1] = Watts(60.0);
    let _ = w.step(&d, Watts(800.0));
    let r = w.step(&d, Watts(400.0));
    let demand_migs: Vec<_> = r
        .migrations
        .iter()
        .filter(|m| m.reason == MigrationReason::Demand)
        .collect();
    assert!(!demand_migs.is_empty());
    assert!(
        demand_migs.iter().all(|m| m.local),
        "sibling surplus must be preferred: {demand_migs:?}"
    );
}

#[test]
fn demand_dropped_when_no_surplus_anywhere() {
    let (tree, specs, n_apps) = small_setup(1);
    let mut cfg = ControllerConfig::default();
    cfg.wake_on_deficit = false;
    let mut w = Willow::new(tree, specs, cfg).unwrap();
    // Demand far beyond the total supply.
    let d = demands(n_apps, 200.0);
    let mut r = TickReport::default();
    for _ in 0..5 {
        r = w.step(&d, Watts(100.0));
    }
    assert!(r.dropped_demand.0 > 0.0, "undersupply must shed demand");
}

#[test]
fn consolidation_empties_idle_server_and_sleeps_it() {
    let (tree, specs, n_apps) = small_setup(1);
    let mut cfg = ControllerConfig::default();
    cfg.consolidation_threshold = 0.2; // 90 W on a 450 W server
    let mut w = Willow::new(tree, specs, cfg).unwrap();
    // All servers lightly loaded; ample supply.
    let d = demands(n_apps, 20.0);
    let mut slept_any = false;
    let mut consolidation_migs = 0;
    for _ in 0..15 {
        let r = w.step(&d, Watts(10_000.0));
        slept_any |= !r.slept.is_empty();
        consolidation_migs += r.migrations_by_reason(MigrationReason::Consolidation);
    }
    assert!(slept_any, "idle servers must be consolidated away");
    assert!(consolidation_migs > 0);
    let active = w.servers().iter().filter(|s| s.active).count();
    assert!(active < 4, "at least one server must sleep");
    // All apps still hosted somewhere.
    let hosted: usize = w.servers().iter().map(|s| s.apps.len()).sum();
    assert_eq!(hosted, n_apps);
}

#[test]
fn sleeping_servers_draw_no_power() {
    let (tree, specs, n_apps) = small_setup(1);
    let mut w = Willow::new(tree, specs, ControllerConfig::default()).unwrap();
    let d = demands(n_apps, 10.0);
    let mut last = None;
    for _ in 0..20 {
        last = Some(w.step(&d, Watts(10_000.0)));
    }
    let r = last.unwrap();
    for (i, active) in r.server_active.iter().enumerate() {
        if !active {
            assert_eq!(r.server_power[i], Watts(0.0));
        }
    }
}

#[test]
fn wake_on_deficit_restores_capacity() {
    let (tree, specs, n_apps) = small_setup(1);
    let mut cfg = ControllerConfig::default();
    cfg.consolidation_threshold = 0.2;
    cfg.wake_on_deficit = true;
    let mut w = Willow::new(tree, specs, cfg).unwrap();
    // Phase 1: idle ⇒ consolidation puts servers to sleep.
    let low = demands(n_apps, 15.0);
    for _ in 0..15 {
        let _ = w.step(&low, Watts(10_000.0));
    }
    let active_before = w.servers().iter().filter(|s| s.active).count();
    assert!(active_before < 4);
    // Phase 2: demand surges beyond what awake servers can host.
    let high = demands(n_apps, 400.0);
    let mut woke = false;
    for _ in 0..20 {
        let r = w.step(&high, Watts(10_000.0));
        woke |= !r.woken.is_empty();
    }
    assert!(woke, "dropped demand must wake sleeping servers");
    let active_after = w.servers().iter().filter(|s| s.active).count();
    assert!(active_after > active_before);
}

#[test]
fn thermal_cap_limits_hot_server_and_workload_flees_hot_zone() {
    // Server 0 sits in a hot zone: once it heats up, its thermal cap —
    // and hence its budget — must fall well below its rating, its
    // temperature must never cross the limit, and Willow must migrate
    // its workload toward the cool zone (the Fig. 5/7 behaviour).
    let (tree, mut specs, n_apps) = small_setup(1);
    specs[0].ambient = Celsius(45.0);
    let mut w = Willow::new(tree, specs, ControllerConfig::default()).unwrap();
    let mut d = demands(n_apps, 10.0);
    d[0] = Watts(400.0);
    let mut min_loaded_budget = f64::INFINITY;
    for _ in 0..50 {
        let r = w.step(&d, Watts(10_000.0));
        assert!(
            r.server_temp[0] <= Celsius(70.0 + 1e-6),
            "thermal limit violated: {}",
            r.server_temp[0]
        );
        if r.server_active[0] && r.server_power[0].0 > 100.0 {
            min_loaded_budget = min_loaded_budget.min(r.server_budget[0].0);
        }
    }
    assert!(
        min_loaded_budget < 450.0 * 0.8,
        "hot loaded server budget {min_loaded_budget} should fall well below rating"
    );
    // The heavy app must have left the hot zone.
    let host = w.locate_app(AppId(0)).expect("app still hosted");
    assert_ne!(host, 0, "workload must migrate out of the hot zone");
}

#[test]
fn thermal_limit_never_violated() {
    let (tree, mut specs, n_apps) = small_setup(2);
    for s in &mut specs[2..] {
        s.ambient = Celsius(40.0);
    }
    let mut w = Willow::new(tree, specs, ControllerConfig::default()).unwrap();
    let d = demands(n_apps, 120.0);
    for _ in 0..100 {
        let r = w.step(&d, Watts(1_200.0));
        for (i, t) in r.server_temp.iter().enumerate() {
            assert!(t.0 <= 70.0 + 1e-6, "server {i} exceeded thermal limit: {t}");
        }
    }
}

#[test]
fn property3_message_bound() {
    let (tree, specs, n_apps) = small_setup(1);
    let links = tree.len() - 1;
    let mut w = Willow::new(tree, specs, ControllerConfig::default()).unwrap();
    for _ in 0..10 {
        let r = w.step(&demands(n_apps, 10.0), Watts(10_000.0));
        assert!(
            r.control_messages <= 2 * links,
            "Property 3: ≤ 2 messages per link per Δ_D"
        );
    }
}

#[test]
fn no_pingpong_under_stable_demand() {
    let (tree, specs, n_apps) = small_setup(2);
    let mut w = Willow::new(tree, specs, ControllerConfig::default()).unwrap();
    let mut d = demands(n_apps, 30.0);
    d[0] = Watts(80.0);
    d[1] = Watts(80.0);
    let mut total_pingpongs = 0;
    for _ in 0..60 {
        let r = w.step(&d, Watts(500.0));
        total_pingpongs += r.pingpongs();
    }
    assert_eq!(total_pingpongs, 0, "stable demand must not ping-pong");
}

#[test]
fn apps_conserved_across_arbitrary_churn() {
    let (tree, specs, n_apps) = small_setup(3);
    let mut w = Willow::new(tree, specs, ControllerConfig::default()).unwrap();
    // Deterministic wavy demand + supply.
    for t in 0..120u64 {
        let d: Vec<Watts> = (0..n_apps)
            .map(|i| Watts(20.0 + 15.0 * (((t as usize + i) % 7) as f64)))
            .collect();
        let supply = Watts(600.0 + 300.0 * ((t % 11) as f64 / 10.0));
        let _ = w.step(&d, supply);
        let hosted: usize = w.servers().iter().map(|s| s.apps.len()).sum();
        assert_eq!(hosted, n_apps, "apps must never be lost or duplicated");
        // Demand alignment invariant.
        for s in w.servers() {
            assert_eq!(s.apps.len(), s.app_demand.len());
        }
    }
}

#[test]
fn strict_reduced_rule_blocks_targets_on_global_dip() {
    // Identical scenario to `supply_plunge_triggers_migration_under_
    // equal_share`, but under the literal reading of the §IV-E rule a
    // global dip reduces every budget, so no target is eligible and no
    // migration may happen — the inconsistency DESIGN.md documents.
    let (tree, specs, n_apps) = small_setup(2);
    let mut cfg = ControllerConfig::default();
    cfg.reduced_rule = ReducedTargetRule::Strict;
    cfg.eta1 = 1;
    cfg.eta2 = 2;
    cfg.consolidation_threshold = 0.0;
    cfg.allocation = AllocationPolicy::EqualShare;
    let mut w = Willow::new(tree, specs, cfg).unwrap();
    let mut d = demands(n_apps, 10.0);
    d[0] = Watts(60.0);
    d[1] = Watts(60.0);
    let _ = w.step(&d, Watts(800.0));
    let r = w.step(&d, Watts(400.0));
    assert_eq!(
        r.migrations_by_reason(MigrationReason::Demand),
        0,
        "strict rule forbids all targets after a global reduction"
    );
}

#[test]
fn shedding_respects_priorities_end_to_end() {
    use willow_workload::app::Priority;
    // One server pod, two apps per server: app even = Low, odd = High.
    let tree = Tree::uniform(&[2, 2]);
    let mut id = 0u32;
    let specs: Vec<ServerSpec> = tree
        .leaves()
        .map(|leaf| {
            let apps: Vec<_> = (0..2)
                .map(|_| {
                    let prio = if id.is_multiple_of(2) {
                        Priority::Low
                    } else {
                        Priority::High
                    };
                    let a = Application::new(AppId(id), 0, &SIM_APP_CLASSES[0]).with_priority(prio);
                    id += 1;
                    a
                })
                .collect();
            ServerSpec::simulation_default(leaf).with_apps(apps)
        })
        .collect();
    let mut cfg = ControllerConfig::default();
    cfg.wake_on_deficit = false;
    cfg.consolidation_threshold = 0.0;
    let mut w = Willow::new(tree, specs, cfg).unwrap();
    // Demand far above supply: shedding is unavoidable everywhere.
    let d = demands(id as usize, 150.0);
    let mut low = 0.0;
    let mut high = 0.0;
    for _ in 0..10 {
        let r = w.step(&d, Watts(800.0));
        low += r.shed_by_priority[Priority::Low.index()].0;
        high += r.shed_by_priority[Priority::High.index()].0;
    }
    assert!(low > 0.0, "undersupply must shed low-priority demand");
    assert!(
        high < low,
        "high-priority demand ({high}) must shed less than low ({low})"
    );
}

#[test]
fn naive_throttle_ablation_overshoots_where_willow_does_not() {
    use crate::config::ThermalEstimate;
    // Hot-zone server driven hard: the naive reactive throttle lets the
    // temperature cross the limit between supply ticks; Willow's
    // window-prediction cap (tested elsewhere) never does.
    let (tree, mut specs, n_apps) = small_setup(1);
    for s in &mut specs {
        s.ambient = Celsius(45.0);
    }
    let mut cfg = ControllerConfig::default();
    cfg.thermal_estimate = ThermalEstimate::NaiveThrottle;
    cfg.consolidation_threshold = 0.0;
    let mut w = Willow::new(tree, specs, cfg).unwrap();
    let d = demands(n_apps, 400.0);
    let mut max_temp = f64::MIN;
    for _ in 0..100 {
        let r = w.step(&d, Watts(10_000.0));
        max_temp = max_temp.max(r.server_temp.iter().map(|t| t.0).fold(f64::MIN, f64::max));
    }
    assert!(
        max_temp > 70.0,
        "naive throttling should overshoot the limit, peaked at {max_temp}"
    );
}

#[test]
fn locate_app_finds_hosts() {
    let (tree, specs, _) = small_setup(1);
    let w = Willow::new(tree, specs, ControllerConfig::default()).unwrap();
    assert_eq!(w.locate_app(AppId(0)), Some(0));
    assert_eq!(w.locate_app(AppId(3)), Some(3));
    assert_eq!(w.locate_app(AppId(99)), None);
}

/// `ControlPolicies::for_config` with the default policy choices must
/// reproduce the previously hard-coded (paper) policies bit-for-bit: a
/// controller built by `Willow::new` from a default config and one built by
/// `Willow::with_policies` with the explicit paper policies must trace
/// identically under churn.
#[test]
fn default_policy_config_matches_explicit_paper_policies() {
    use willow_binpack::packer_for;

    let (tree, specs, n_apps) = small_setup(2);
    let cfg = ControllerConfig::default();
    let mut from_config = Willow::new(tree.clone(), specs.clone(), cfg.clone()).unwrap();
    let mut explicit = Willow::with_policies(
        tree,
        specs,
        cfg.clone(),
        ControlPolicies {
            packer: packer_for(cfg.packer),
            targets: Box::new(AscendingIdTargets),
            consolidation: Box::new(HotZonesFirst),
        },
    )
    .unwrap();
    for t in 0..80u64 {
        let d: Vec<Watts> = (0..n_apps)
            .map(|i| Watts(30.0 + ((i as u64 + t) % 7) as f64 * 40.0))
            .collect();
        let supply = Watts(if t % 11 < 5 { 900.0 } else { 2600.0 });
        let a = from_config.step(&d, supply);
        let b = explicit.step(&d, supply);
        assert_eq!(a, b, "trajectories diverged at tick {t}");
    }
}

/// Every target × consolidation policy combination must drive the pipeline
/// through demand churn, deficit and consolidation without panicking or
/// losing apps, and the selection must be deterministic (same config ⇒ same
/// trajectory).
#[test]
fn every_policy_combo_is_deterministic_and_conserves_apps() {
    use crate::config::{ConsolidationPolicyChoice, TargetPolicyChoice};

    for target in [
        TargetPolicyChoice::AscendingId,
        TargetPolicyChoice::BestFit,
        TargetPolicyChoice::ThermalHeadroom,
    ] {
        for consolidation in [
            ConsolidationPolicyChoice::HotZonesFirst,
            ConsolidationPolicyChoice::EmptiestFirst,
            ConsolidationPolicyChoice::MostHeadroomReceivers,
        ] {
            let (tree, specs, n_apps) = small_setup(2);
            let mut cfg = ControllerConfig::default();
            cfg.target_policy = target;
            cfg.consolidation_policy = consolidation;
            let mut a = Willow::new(tree.clone(), specs.clone(), cfg.clone()).unwrap();
            let mut b = Willow::new(tree, specs, cfg).unwrap();
            for t in 0..60u64 {
                let d: Vec<Watts> = (0..n_apps)
                    .map(|i| Watts(20.0 + ((i as u64 * 3 + t) % 9) as f64 * 35.0))
                    .collect();
                let supply = Watts(if t % 13 < 6 { 800.0 } else { 2600.0 });
                let ra = a.step(&d, supply);
                let rb = b.step(&d, supply);
                assert_eq!(
                    ra, rb,
                    "{target:?}/{consolidation:?} nondeterministic at {t}"
                );
                let hosted: usize = a.servers().iter().map(|s| s.apps.len()).sum();
                assert_eq!(hosted, n_apps, "{target:?}/{consolidation:?} lost apps");
            }
        }
    }
}
