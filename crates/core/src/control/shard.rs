//! Persistent worker pool and shard arithmetic for the parallel pipeline
//! stages.
//!
//! The control tick fires several short (tens of microseconds) parallel
//! regions per tick; spawning OS threads per region would cost more than
//! the regions themselves, so [`ShardPool`] keeps `threads − 1` workers
//! parked on a condvar for the life of the controller and the control
//! thread itself executes the last shard. Determinism is structural, not
//! synchronized: every parallel region writes only shard-disjoint indices
//! (see `RawSlice`) or per-shard scratch that the caller folds serially
//! in shard order afterwards, so results are bit-for-bit identical to the
//! serial path at any thread count.

// The one sanctioned unsafe island in this crate — see `lib.rs`.
#![allow(unsafe_code)]

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Resolve a configured thread count: `0` means auto-detect from available
/// parallelism, anything else is taken literally (minimum 1).
#[must_use]
pub fn resolve_threads(configured: usize) -> usize {
    match configured {
        0 => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        n => n,
    }
}

/// Half-open index range of shard `k` of `shards` over `len` items: an even
/// split with the first `len % shards` shards one item longer. Fixed purely
/// by `(len, shards)`, never by runtime timing, so shard boundaries are
/// reproducible.
#[must_use]
pub fn shard_range(len: usize, shards: usize, k: usize) -> std::ops::Range<usize> {
    debug_assert!(k < shards);
    let base = len / shards;
    let rem = len % shards;
    let start = k * base + k.min(rem);
    start..start + base + usize::from(k < rem)
}

/// Type-erased pointer to the job closure, with the borrow lifetime erased.
/// Sound because [`ShardPool::run`] blocks until every worker has finished
/// executing the closure, so the erased borrow strictly outlives all uses.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// The pointee is Sync (workers only get &dyn Fn) and the pointer itself is
// just an address; run()'s barrier keeps the borrow alive while shared.
unsafe impl Send for JobPtr {}

struct JobSlot {
    /// Bumped once per job; workers compare against their last-seen value
    /// to pick up new work exactly once.
    epoch: u64,
    job: Option<JobPtr>,
    /// Workers still executing the current job.
    remaining: usize,
    /// Set when any worker's shard panicked; the panic is re-raised on the
    /// control thread after the barrier completes.
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    slot: Mutex<JobSlot>,
    start: Condvar,
    done: Condvar,
}

/// A fixed-size pool executing one `Fn(shard_index)` job across all shards.
///
/// `threads == 1` degenerates to a plain call on the current thread (no
/// workers spawned, no synchronization), which is what keeps the serial
/// path allocation- and overhead-free.
pub struct ShardPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for ShardPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl ShardPool {
    /// Create a pool executing jobs across `threads` shards (the calling
    /// thread counts as one; `threads − 1` workers are spawned).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            slot: Mutex::new(JobSlot {
                epoch: 0,
                job: None,
                remaining: 0,
                panicked: false,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (0..threads.saturating_sub(1))
            .map(|shard| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("willow-shard-{shard}"))
                    .spawn(move || Self::worker(&shared, shard))
                    .expect("spawn shard worker")
            })
            .collect();
        ShardPool {
            shared,
            workers,
            threads,
        }
    }

    /// Number of shards every job is split into.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute `f(shard)` once for every shard in `0..threads()`, returning
    /// after all shards completed. The calling thread runs the last shard;
    /// workers run the rest concurrently. A panic in any shard is re-raised
    /// here — but only after every shard finished, so the erased borrow in
    /// `JobPtr` is never outlived even on the unwind path.
    pub fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        if self.threads == 1 {
            f(0);
            return;
        }
        let ptr: *const (dyn Fn(usize) + Sync) = f;
        // Erase the borrow lifetime; the barrier below re-establishes it.
        #[allow(clippy::missing_transmute_annotations)]
        let job = JobPtr(unsafe { std::mem::transmute(ptr) });
        {
            let mut slot = self.shared.slot.lock().unwrap();
            debug_assert_eq!(slot.remaining, 0, "previous job fully drained");
            slot.job = Some(job);
            slot.remaining = self.threads - 1;
            slot.epoch = slot.epoch.wrapping_add(1);
            self.shared.start.notify_all();
        }
        let caller = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            f(self.threads - 1);
        }));
        let worker_panicked = {
            let mut slot = self.shared.slot.lock().unwrap();
            while slot.remaining != 0 {
                slot = self.shared.done.wait(slot).unwrap();
            }
            slot.job = None;
            std::mem::take(&mut slot.panicked)
        };
        if let Err(payload) = caller {
            std::panic::resume_unwind(payload);
        }
        assert!(!worker_panicked, "a shard worker panicked");
    }

    fn worker(shared: &Shared, shard: usize) {
        let mut seen = 0u64;
        loop {
            let job = {
                let mut slot = shared.slot.lock().unwrap();
                loop {
                    if slot.shutdown {
                        return;
                    }
                    if slot.epoch != seen {
                        seen = slot.epoch;
                        break slot.job.expect("epoch bump publishes a job");
                    }
                    slot = shared.start.wait(slot).unwrap();
                }
            };
            // SAFETY: run() keeps the closure borrow alive until
            // `remaining` hits zero, which only happens below. Panics are
            // caught so the barrier always completes (a missing decrement
            // would deadlock run()) and re-raised on the control thread.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
                (*job.0)(shard);
            }));
            let mut slot = shared.slot.lock().unwrap();
            if outcome.is_err() {
                slot.panicked = true;
            }
            slot.remaining -= 1;
            if slot.remaining == 0 {
                shared.done.notify_one();
            }
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.slot.lock().unwrap();
            slot.shutdown = true;
            self.shared.start.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Shared handle to a mutable slice that hands out disjoint sub-ranges to
/// concurrent shards.
///
/// # Safety contract
/// Callers must guarantee that concurrent [`RawSlice::range_mut`] calls use
/// pairwise-disjoint ranges (in this module: each shard touches only its
/// [`shard_range`], and ranges for distinct shards never overlap), and that
/// the backing slice outlives the parallel region (guaranteed because
/// [`ShardPool::run`] is a barrier).
pub(crate) struct RawSlice<T> {
    ptr: *mut T,
    len: usize,
}

unsafe impl<T: Send> Sync for RawSlice<T> {}
unsafe impl<T: Send> Send for RawSlice<T> {}

impl<T> RawSlice<T> {
    pub(crate) fn new(slice: &mut [T]) -> Self {
        RawSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
        }
    }

    /// Mutable view of `start..end`.
    ///
    /// # Safety
    /// The range must be in bounds and disjoint from every range any other
    /// thread obtains from this handle during the same parallel region.
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn range_mut(&self, range: std::ops::Range<usize>) -> &mut [T] {
        debug_assert!(range.start <= range.end && range.end <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.end - range.start)
    }

    /// Mutable reference to element `i` — for scattered (non-range) writes
    /// such as arena-slot-indexed stores.
    ///
    /// # Safety
    /// `i` must be in bounds, and no other thread may touch index `i`
    /// during the same parallel region (in this module: writes to slot `i`
    /// are gated on an ownership predicate that holds for exactly one
    /// shard, e.g. `leaf_server[i] == Some(si)` with `si` shard-local).
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn get_mut(&self, i: usize) -> &mut T {
        debug_assert!(i < self.len);
        &mut *self.ptr.add(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn shard_ranges_tile_the_input() {
        for len in [0usize, 1, 7, 8, 100, 104_976] {
            for shards in [1usize, 2, 3, 4, 8] {
                let mut covered = 0;
                let mut next = 0;
                for k in 0..shards {
                    let r = shard_range(len, shards, k);
                    assert_eq!(r.start, next, "shards are contiguous");
                    next = r.end;
                    covered += r.len();
                    // Even split: lengths differ by at most one.
                    assert!(r.len() >= len / shards);
                    assert!(r.len() <= len / shards + 1);
                }
                assert_eq!(covered, len);
                assert_eq!(next, len);
            }
        }
    }

    #[test]
    fn pool_runs_every_shard_exactly_once() {
        for threads in [1usize, 2, 4, 8] {
            let pool = ShardPool::new(threads);
            let hits: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
            for _ in 0..50 {
                pool.run(&|k| {
                    hits[k].fetch_add(1, Ordering::Relaxed);
                });
            }
            for h in &hits {
                assert_eq!(h.load(Ordering::Relaxed), 50);
            }
        }
    }

    #[test]
    fn pool_with_raw_slice_matches_serial() {
        let n = 10_001usize;
        let serial: Vec<u64> = (0..n as u64).map(|i| i * 3 + 1).collect();
        let pool = ShardPool::new(4);
        let mut out = vec![0u64; n];
        let raw = RawSlice::new(&mut out);
        pool.run(&|k| {
            let r = shard_range(n, 4, k);
            // SAFETY: shard ranges are pairwise disjoint.
            let chunk = unsafe { raw.range_mut(r.clone()) };
            for (i, slot) in r.zip(chunk.iter_mut()) {
                *slot = i as u64 * 3 + 1;
            }
        });
        assert_eq!(out, serial);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = ShardPool::new(4);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(&|k| {
                assert!(k != 0, "injected shard panic");
            });
        }));
        assert!(err.is_err(), "worker panic reaches the caller");
        // The barrier completed despite the panic; the pool stays usable.
        let hits: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        pool.run(&|k| {
            hits[k].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn resolve_threads_semantics() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(6), 6);
    }
}
