//! Pipeline stage 4 — consolidation (§IV-E end, §V-C5): below-threshold
//! servers try to empty themselves (local targets first) and sleep if they
//! succeed; sleeping servers may be woken when demand was shed. The
//! victim/receiver ordering is the third pluggable decision point (see
//! [`super::policy`]). Also home to the operator API (drain, force-wake,
//! ambient changes), which reuses the evacuation machinery.

use super::demand::DeficitItem;
use super::planning::PlanningContext;
use super::Willow;
use crate::config::SupplyPolicyChoice;
use crate::migration::{MigrationReason, MigrationRecord};
use willow_thermal::units::Watts;
use willow_topology::{NodeId, Tree};

/// Reusable working memory for the consolidation stage: candidate victims,
/// receiver flags, and the buffers of one all-or-nothing evacuation plan.
/// Cleared (capacity retained) instead of reallocated, so a steady-state
/// consolidation tick performs zero heap allocations once warmed up. Taken
/// out of the controller with `std::mem::take` for the duration of the
/// stage and put back afterwards.
#[derive(Debug, Default)]
pub(crate) struct ConsolidateStage {
    /// Below-threshold server indices.
    pub(super) candidates: Vec<usize>,
    /// Servers that received consolidated load this round.
    pub(super) received: Vec<bool>,
    /// Apps to move in a full-evacuation plan.
    pub(super) evac_items: Vec<DeficitItem>,
    /// Effective sizes of the evacuation items.
    pub(super) evac_sizes: Vec<f64>,
    /// Ordered target bins (siblings first) for an evacuation.
    pub(super) evac_bins: Vec<NodeId>,
    /// Free capacity per evacuation bin during first-fit placement.
    pub(super) evac_free: Vec<f64>,
    /// Item placement order (largest first) for an evacuation.
    pub(super) evac_order: Vec<usize>,
    /// The all-or-nothing evacuation plan.
    pub(super) evac_plan: Vec<(DeficitItem, NodeId)>,
    /// Sleeping-server indices for wake-on-deficit.
    pub(super) sleeping: Vec<usize>,
    /// Migration-record scratch for operator-initiated drains (the records
    /// feed no tick report; a drain reports via its return value).
    pub(super) drain_records: Vec<MigrationRecord>,
}

impl ConsolidateStage {
    /// Pre-size the per-leaf and per-server buffers so even the first
    /// consolidation tick allocates as little as possible.
    pub(super) fn for_tree(tree: &Tree, servers: usize) -> Self {
        let leaves = tree.leaves().count();
        ConsolidateStage {
            candidates: Vec::with_capacity(servers),
            received: Vec::with_capacity(servers),
            evac_bins: Vec::with_capacity(leaves),
            evac_free: Vec::with_capacity(leaves),
            sleeping: Vec::with_capacity(servers),
            ..ConsolidateStage::default()
        }
    }
}

impl Willow {
    /// Consolidation (§IV-E end, §V-C5): below-threshold servers try to
    /// empty themselves — local targets first — and sleep if they succeed.
    pub(super) fn consolidate(
        &mut self,
        tick: u64,
        stage: &mut ConsolidateStage,
        records: &mut Vec<MigrationRecord>,
        slept: &mut Vec<NodeId>,
        plan: &PlanningContext,
    ) {
        let first_record = records.len();
        stage.candidates.clear();
        // Fenced-state servers are excluded: a draining server's lifecycle
        // belongs to the command plane alone (see `super::liveops`). The
        // predictive policy additionally skips victims whose *forecast*
        // demand crosses the threshold within the next consolidation
        // period — sleeping a server at the foot of a ramp just forces a
        // wake (and re-migrations) one period later.
        stage
            .candidates
            .extend((0..self.servers.len()).filter(|&i| {
                self.servers[i].active
                    && self.servers[i].fence.is_active()
                    && self.servers[i].utilization() < self.config.consolidation_threshold
                    && !self.predicted_above_threshold(i, plan)
            }));
        {
            let ctx = self.policy_ctx();
            self.policies
                .consolidation
                .order_victims(&ctx, plan, &mut stage.candidates);
        }

        // Servers that receive consolidated load this round must not be
        // evacuated in the same round — that would cascade apps through
        // multiple hops in a single period.
        stage.received.clear();
        stage.received.resize(self.servers.len(), false);

        for ci in 0..stage.candidates.len() {
            let si = stage.candidates[ci];
            // Re-check: a candidate may have received load meanwhile.
            if stage.received[si]
                || !self.servers[si].active
                || self.servers[si].utilization() >= self.config.consolidation_threshold
            {
                continue;
            }
            let leaf = self.servers[si].node;
            if self.servers[si].apps.is_empty() {
                self.sleep_server(si, tick);
                slept.push(leaf);
                continue;
            }
            if self.plan_full_evacuation(
                si,
                &mut stage.evac_items,
                &mut stage.evac_sizes,
                &mut stage.evac_bins,
                &mut stage.evac_free,
                &mut stage.evac_order,
                &mut stage.evac_plan,
                plan,
            ) {
                // A failed attempt mid-plan (injected reject/abort) stops
                // the evacuation: the server keeps its remaining apps and
                // stays awake — never sleep a server that still hosts work.
                let mut evacuated = true;
                for pi in 0..stage.evac_plan.len() {
                    let (item, target) = stage.evac_plan[pi];
                    let tgt_idx =
                        self.leaf_server[target.index()].expect("target is a server leaf");
                    if self.attempt_migration(&item, target, tick, records) {
                        stage.received[tgt_idx] = true;
                    } else {
                        evacuated = false;
                        break;
                    }
                }
                if evacuated {
                    debug_assert!(self.servers[si].apps.is_empty());
                    self.sleep_server(si, tick);
                    slept.push(leaf);
                }
            }
        }
        // Consolidation migrations are re-labeled with their reason; demand
        // records recorded earlier this tick sit before `first_record`.
        for r in &mut records[first_record..] {
            r.reason = MigrationReason::Consolidation;
        }
    }

    /// True when the predictive policy forecasts server `si`'s demand to
    /// cross the consolidation threshold within one consolidation period
    /// (`η2` demand periods). Always false under the reactive default, and
    /// for servers without enough history to forecast.
    fn predicted_above_threshold(&self, si: usize, plan: &PlanningContext) -> bool {
        if self.config.supply_policy != SupplyPolicyChoice::Predictive {
            return false;
        }
        let Some(pred) = plan.predicted_leaf_demand(si, self.config.eta2) else {
            return false;
        };
        let server = &self.servers[si];
        if server.full_util_power.0 <= 0.0 {
            return false;
        }
        // The leaf series tracks smoothed CP (base load included); strip
        // the base load so the comparison matches `utilization()`.
        let pred_util = (pred - server.base_load).non_negative() / server.full_util_power;
        pred_util >= self.config.consolidation_threshold
    }

    /// How much rating to wake this consolidation tick. Reactive: exactly
    /// the demand shed last period (wake-on-deficit as shipped).
    /// Predictive additionally wakes ahead of a forecast shortfall: if the
    /// root demand forecast one consolidation period out exceeds what the
    /// forecast supply — or the active fleet's thermal caps — can serve,
    /// the gap is woken *now*, before the drops it would cause.
    pub(super) fn wake_need(&self, plan: &PlanningContext) -> Watts {
        if self.config.supply_policy != SupplyPolicyChoice::Predictive {
            return self.last_dropped;
        }
        let h = self.config.eta2;
        let Some(pred_demand) = plan.predicted_root_demand(h) else {
            return self.last_dropped;
        };
        // The supply series ticks once per supply period; translate the
        // consolidation horizon into (rounded-up) supply periods.
        let supply_h = h.div_ceil(self.config.eta1).max(1);
        let Some(pred_supply) = plan.predicted_supply(supply_h) else {
            return self.last_dropped;
        };
        let mut active_cap = Watts::ZERO;
        for (si, server) in self.servers.iter().enumerate() {
            let leaf = server.node.index();
            if server.active && server.fence.is_active() && self.leaf_server[leaf] == Some(si) {
                active_cap += self.power.cap[leaf];
            }
        }
        let serviceable = pred_supply.min(active_cap);
        self.last_dropped
            .max((pred_demand - serviceable).non_negative())
    }

    /// Try to place *all* apps of server `si` elsewhere (local bins first,
    /// then anywhere eligible). Fills `plan` and returns `true`, or returns
    /// `false` if the server cannot be fully evacuated.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn plan_full_evacuation(
        &self,
        si: usize,
        items: &mut Vec<DeficitItem>,
        sizes: &mut Vec<f64>,
        bins: &mut Vec<NodeId>,
        free: &mut Vec<f64>,
        order: &mut Vec<usize>,
        plan: &mut Vec<(DeficitItem, NodeId)>,
        planning: &PlanningContext,
    ) -> bool {
        plan.clear();
        let leaf = self.servers[si].node;
        // All-or-nothing: an app still in retry backoff blocks evacuation.
        if self.servers[si]
            .apps
            .iter()
            .any(|a| self.in_backoff(a.id, self.tick))
        {
            return false;
        }
        items.clear();
        items.extend(
            self.servers[si]
                .apps
                .iter()
                .enumerate()
                .map(|(i, app)| DeficitItem {
                    server: si,
                    app: app.id,
                    demand: self.servers[si].app_demand[i],
                    reason: MigrationReason::Consolidation,
                }),
        );
        sizes.clear();
        sizes.extend(items.iter().map(|it| self.effective_size(it.demand)));

        // Eligible bins: siblings first, then the rest of the data center.
        // The consolidation policy orders each class separately so the
        // locality preference is never policy-dependent.
        bins.clear();
        bins.extend(
            self.tree
                .siblings(leaf)
                .filter(|&l| self.target_eligible(l)),
        );
        let n_siblings = bins.len();
        {
            let ctx = self.policy_ctx();
            self.policies
                .consolidation
                .order_receivers(&ctx, planning, &mut bins[..n_siblings]);
        }
        for l in self.tree.leaves() {
            if l != leaf && self.target_eligible(l) && !bins[..n_siblings].contains(&l) {
                bins.push(l);
            }
        }
        {
            let ctx = self.policy_ctx();
            self.policies
                .consolidation
                .order_receivers(&ctx, planning, &mut bins[n_siblings..]);
        }
        if bins.is_empty() {
            return false;
        }
        // First-fit over the ordered bins keeps the locality preference;
        // a full FFDLR over the union would not honor sibling priority.
        free.clear();
        free.extend(bins.iter().map(|&l| self.bin_capacity(l).0));
        order.clear();
        order.extend(0..items.len());
        order.sort_unstable_by(|&a, &b| sizes[b].total_cmp(&sizes[a]).then(a.cmp(&b)));
        let tick = self.tick;
        for &i in order.iter() {
            let placed = free.iter().enumerate().position(|(b, &f)| {
                sizes[i] <= f + 1e-12 && !self.would_pingpong(items[i].app, bins[b], tick)
            });
            match placed {
                Some(b) => {
                    free[b] -= sizes[i];
                    plan.push((items[i], bins[b]));
                }
                None => return false, // all-or-nothing evacuation
            }
        }
        true
    }

    pub(super) fn sleep_server(&mut self, si: usize, tick: u64) {
        let server = &mut self.servers[si];
        server.active = false;
        server.last_activity_change = tick;
        server.smoother.reset();
        self.power.cp[server.node.index()] = Watts::ZERO;
        self.local_cp[server.node.index()] = Watts::ZERO;
    }

    // ------------------------------------------------------------------
    // Operator / failure-injection API
    // ------------------------------------------------------------------

    /// Change a server's ambient temperature mid-run — a cooling failure
    /// (ambient rises) or repair (ambient falls). The next supply tick
    /// recomputes the thermal cap from the new environment and the
    /// demand-side machinery migrates workload accordingly.
    ///
    /// # Panics
    /// Panics if `server` is out of range.
    pub fn set_server_ambient(&mut self, server: usize, ambient: willow_thermal::units::Celsius) {
        self.servers[server].thermal.set_ambient(ambient);
    }

    /// Drain a server for maintenance: try to evacuate every hosted app
    /// (margins respected) and put it to sleep. Returns `true` on success;
    /// on failure the server is left untouched and awake.
    ///
    /// # Panics
    /// Panics if `server` is out of range.
    pub fn drain_server(&mut self, server: usize) -> bool {
        if !self.servers[server].active {
            return true;
        }
        let tick = self.tick;
        if self.servers[server].apps.is_empty() {
            self.sleep_server(server, tick);
            return true;
        }
        let mut stage = std::mem::take(&mut self.consolidate_stage);
        let planning = std::mem::take(&mut self.planning);
        let planned = self.plan_full_evacuation(
            server,
            &mut stage.evac_items,
            &mut stage.evac_sizes,
            &mut stage.evac_bins,
            &mut stage.evac_free,
            &mut stage.evac_order,
            &mut stage.evac_plan,
            &planning,
        );
        self.planning = planning;
        let mut drained = planned;
        if planned {
            stage.drain_records.clear();
            for pi in 0..stage.evac_plan.len() {
                let (item, target) = stage.evac_plan[pi];
                if !self.attempt_migration(&item, target, tick, &mut stage.drain_records) {
                    // Injected failure mid-drain: already-moved apps stay
                    // moved, but the server keeps the rest and stays awake.
                    drained = false;
                    break;
                }
            }
            if drained {
                debug_assert!(self.servers[server].apps.is_empty());
                self.sleep_server(server, tick);
            }
        }
        self.consolidate_stage = stage;
        drained
    }

    /// Wake a sleeping server (after maintenance). No-op if already awake
    /// or if the server is fenced by the command plane (a drained server
    /// receives zero budget and zero load until re-added; see
    /// [`super::liveops`]).
    ///
    /// # Panics
    /// Panics if `server` is out of range.
    pub fn force_wake(&mut self, server: usize) {
        if !self.servers[server].active && self.servers[server].fence.is_active() {
            let tick = self.tick;
            self.servers[server].active = true;
            self.servers[server].last_activity_change = tick;
        }
    }

    /// Wake sleeping servers (largest thermal headroom first) until their
    /// combined ratings cover `needed`, appending the woken leaves to
    /// `woken`. `sleeping` is sorting scratch.
    pub(super) fn wake_servers(
        &mut self,
        needed: Watts,
        tick: u64,
        sleeping: &mut Vec<usize>,
        woken: &mut Vec<NodeId>,
    ) {
        sleeping.clear();
        // Fenced and retired servers must never be woken — a drained
        // server receives zero budget and zero load thereafter.
        sleeping.extend(
            (0..self.servers.len())
                .filter(|&i| !self.servers[i].active && self.servers[i].fence.is_active()),
        );
        sleeping.sort_unstable_by(|&a, &b| {
            self.servers[b]
                .thermal
                .rating()
                .0
                .total_cmp(&self.servers[a].thermal.rating().0)
                .then(a.cmp(&b))
        });
        let mut covered = Watts::ZERO;
        for &si in sleeping.iter() {
            if covered >= needed {
                break;
            }
            let server = &mut self.servers[si];
            server.active = true;
            server.last_activity_change = tick;
            covered += server.thermal.rating();
            woken.push(server.node);
        }
    }
}
