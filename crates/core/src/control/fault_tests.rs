//! Fault-injection defenses, controller-crash (open-loop + recovery) and
//! invariant-auditor tests. Behavioral closed-loop tests live in
//! `super::tests`.

use super::testutil::{demands, placement, small_setup};
use super::*;
use crate::config::{AllocationPolicy, ControllerConfig};
use crate::disturbance::MigrationOutcome;
use crate::migration::MigrationReason;
use willow_workload::app::{Application, SIM_APP_CLASSES};

/// Zero-valued (but fully allocated) disturbance vectors must behave
/// exactly like the empty default — tick-for-tick.
#[test]
fn explicit_zero_disturbances_match_fault_free_run() {
    let (tree, specs, n_apps) = small_setup(2);
    let mut a = Willow::new(tree.clone(), specs.clone(), ControllerConfig::default()).unwrap();
    let mut b = Willow::new(tree, specs, ControllerConfig::default()).unwrap();
    let zero = Disturbances {
        crashed: vec![false; 4],
        report_lost: vec![false; 4],
        directive_lost: vec![false; 4],
        sensor_override: vec![None; 4],
        sensor_offset: vec![0.0; 4],
        migration_outcomes: vec![MigrationOutcome::Success; 8],
    };
    for t in 0..60u64 {
        let d: Vec<Watts> = (0..n_apps)
            .map(|i| Watts(20.0 + 15.0 * (((t as usize + i) % 7) as f64)))
            .collect();
        let supply = Watts(300.0 + 200.0 * ((t % 9) as f64 / 8.0));
        let ra = a.step(&d, supply);
        let rb = b.step_with(&d, supply, &zero);
        assert_eq!(ra, rb, "tick {t} diverged under zero disturbances");
    }
}

/// A leaf that keeps missing its directive must never see its budget
/// loosen, and after `watchdog_threshold` misses it must fall back to
/// the conservative cap. A fresh directive releases the fallback.
#[test]
fn stale_directive_watchdog_tightens_only_then_recovers() {
    let (tree, specs, n_apps) = small_setup(1);
    let mut cfg = ControllerConfig::default();
    cfg.eta1 = 1; // every tick is a supply tick
    cfg.consolidation_threshold = 0.0;
    let threshold = cfg.robustness.watchdog_threshold;
    let frac = cfg.robustness.watchdog_cap_fraction;
    let mut w = Willow::new(tree, specs, cfg).unwrap();
    let d = demands(n_apps, 50.0);
    // Settle fault-free first.
    let mut last_budget = Watts::ZERO;
    for _ in 0..5 {
        last_budget = w.step(&d, Watts(10_000.0)).server_budget[0];
    }
    let lost = Disturbances {
        directive_lost: vec![true, false, false, false],
        ..Disturbances::default()
    };
    let rating = w.servers()[0].thermal.rating();
    let mut tripped_at = None;
    for k in 1..=(threshold + 2) {
        let r = w.step_with(&d, Watts(10_000.0), &lost);
        assert_eq!(r.directives_lost, 1);
        assert!(
            r.server_budget[0] <= last_budget + Watts(1e-9),
            "budget loosened without a fresh directive at miss {k}"
        );
        last_budget = r.server_budget[0];
        if r.watchdog_trips > 0 {
            assert_eq!(tripped_at, None, "watchdog must trip exactly once");
            tripped_at = Some(k);
        }
        if k >= threshold {
            assert_eq!(r.fallback_servers, 1);
            assert!(
                r.server_budget[0] <= Watts(rating.0 * frac + 1e-9),
                "fallback cap not applied at miss {k}"
            );
        }
    }
    assert_eq!(tripped_at, Some(threshold));
    // A fresh directive resets the watchdog and may loosen again.
    let r = w.step(&d, Watts(10_000.0));
    assert_eq!(r.fallback_servers, 0);
    assert!(r.server_budget[0] >= last_budget);
}

/// An aborted migration leaves the app at the source but charges the
/// copy cost to both end nodes and the traffic to the fabric.
#[test]
fn aborted_migration_restores_source_and_charges_both_ends() {
    let (tree, specs, n_apps) = small_setup(2);
    let mut cfg = ControllerConfig::default();
    cfg.margin = Watts(5.0);
    cfg.eta1 = 1;
    cfg.eta2 = 1000;
    cfg.consolidation_threshold = 0.0;
    cfg.allocation = AllocationPolicy::EqualShare;
    let mut w = Willow::new(tree, specs, cfg).unwrap();
    let mut d = demands(n_apps, 10.0);
    d[0] = Watts(60.0);
    d[1] = Watts(60.0);
    let _ = w.step(&d, Watts(800.0));
    let abort = Disturbances {
        migration_outcomes: vec![MigrationOutcome::Abort; 8],
        ..Disturbances::default()
    };
    let all_nodes: Vec<NodeId> = w.tree().ids().collect();
    let r = w.step_with(&d, Watts(400.0), &abort);
    assert!(r.migration_aborts > 0, "plunge must provoke an attempt");
    assert!(r.migrations.is_empty(), "aborted moves must not complete");
    // Both apps still on server 0; conservation holds.
    let hosted: usize = w.servers().iter().map(|s| s.apps.len()).sum();
    assert_eq!(hosted, n_apps);
    assert_eq!(w.servers()[0].apps.len(), 2);
    // The copy work was real: both ends carry the temporary cost and
    // the fabric carried the traffic despite zero completed moves.
    let charged = w
        .servers()
        .iter()
        .filter(|s| s.pending_cost.0 > 0.0)
        .count();
    assert!(charged >= 2, "both end nodes must be charged");
    let carried = w
        .fabric()
        .sum_traffic(&all_nodes, willow_network::TrafficKind::Migration);
    assert!(carried > 0.0, "the fabric must have carried the copy");
}

/// After a rejected attempt the app backs off; once the backoff
/// expires a clean retry succeeds and is counted.
#[test]
fn rejected_migration_retries_after_backoff() {
    let (tree, specs, n_apps) = small_setup(2);
    let mut cfg = ControllerConfig::default();
    cfg.margin = Watts(5.0);
    cfg.eta1 = 1;
    cfg.eta2 = 1000;
    cfg.consolidation_threshold = 0.0;
    cfg.allocation = AllocationPolicy::EqualShare;
    let mut w = Willow::new(tree, specs, cfg).unwrap();
    let mut d = demands(n_apps, 10.0);
    d[0] = Watts(60.0);
    d[1] = Watts(60.0);
    let _ = w.step(&d, Watts(800.0));
    let reject = Disturbances {
        migration_outcomes: vec![MigrationOutcome::Reject; 8],
        ..Disturbances::default()
    };
    let r = w.step_with(&d, Watts(400.0), &reject);
    assert!(r.migration_rejects > 0);
    assert!(r.migrations.is_empty());
    // Fault-free from now on: the retry must eventually land.
    let mut retried = 0;
    for _ in 0..10 {
        let r = w.step(&d, Watts(400.0));
        retried += r.migration_retries;
    }
    assert!(retried > 0, "backoff must end in a successful retry");
}

/// A duplicated commit message must be a no-op at the controller
/// level: the app is not moved twice, no second record is emitted and
/// the stats stay put — conservation survives message duplication.
#[test]
fn duplicate_commit_does_not_double_move() {
    let (tree, specs, n_apps) = small_setup(2);
    let mut cfg = ControllerConfig::default();
    cfg.margin = Watts(5.0);
    cfg.eta1 = 1;
    cfg.eta2 = 1000;
    cfg.consolidation_threshold = 0.0;
    cfg.allocation = AllocationPolicy::EqualShare;
    let mut w = Willow::new(tree, specs, cfg).unwrap();
    let mut d = demands(n_apps, 10.0);
    d[0] = Watts(60.0);
    d[1] = Watts(60.0);
    let _ = w.step(&d, Watts(800.0));
    let r = w.step(&d, Watts(400.0));
    assert_eq!(r.migrations.len(), 1, "the plunge must trigger one move");
    let moved = r.migrations[0].app;
    let committed = w
        .journal()
        .entry(crate::txn::TxnId(0))
        .copied()
        .expect("the transaction is still journaled");
    assert_eq!(committed.phase, crate::txn::TxnPhase::Committed);
    assert_eq!(committed.app, moved);
    let host = w.locate_app(moved).unwrap();
    let stats = w.stats();

    // Replay the commit, as a duplicated message would.
    let mut records = Vec::new();
    assert!(
        !w.commit_migration(committed.id, &mut records),
        "replayed commit must report it did nothing"
    );
    assert!(records.is_empty());
    assert_eq!(w.locate_app(moved), Some(host), "app must not move again");
    assert_eq!(w.stats(), stats);
    let hosted: usize = w.servers().iter().map(|s| s.apps.len()).sum();
    assert_eq!(hosted, n_apps, "no app may be duplicated or lost");
}

/// Pins the failure-accounting semantics documented on [`TickReport`]:
/// every attempt outcome is counted exactly once, in the period it
/// happens — a reject is only a reject, an abort is only an abort, and
/// the eventual successful retry counts as one retry plus one
/// migration without re-counting (or retroactively un-counting) the
/// earlier failures.
#[test]
fn failure_accounting_counts_each_outcome_once() {
    let (tree, specs, n_apps) = small_setup(2);
    let mut cfg = ControllerConfig::default();
    cfg.margin = Watts(5.0);
    cfg.eta1 = 1;
    cfg.eta2 = 1000;
    cfg.consolidation_threshold = 0.0;
    cfg.allocation = AllocationPolicy::EqualShare;
    let mut w = Willow::new(tree, specs, cfg).unwrap();
    let mut d = demands(n_apps, 10.0);
    d[0] = Watts(60.0);
    d[1] = Watts(60.0);
    let _ = w.step(&d, Watts(800.0));
    let reject = Disturbances {
        migration_outcomes: vec![MigrationOutcome::Reject; 8],
        ..Disturbances::default()
    };
    let abort = Disturbances {
        migration_outcomes: vec![MigrationOutcome::Abort; 8],
        ..Disturbances::default()
    };

    // Attempt 1: admission rejected — one reject, nothing else.
    let r = w.step_with(&d, Watts(400.0), &reject);
    assert_eq!(
        (r.migration_rejects, r.migration_aborts, r.migration_retries),
        (1, 0, 0)
    );
    assert!(r.migrations.is_empty());

    // Attempt 2 (the one-tick backoff has expired): aborted mid-flight
    // — one abort, and the earlier reject is not re-counted.
    let r = w.step_with(&d, Watts(400.0), &abort);
    assert_eq!(
        (r.migration_rejects, r.migration_aborts, r.migration_retries),
        (0, 1, 0)
    );
    assert!(r.migrations.is_empty());

    // Fault-free from here: the eventual success is one retry and one
    // migration, never an additional failure of either kind.
    let (mut rejects, mut aborts, mut retries, mut moves) = (0, 0, 0, 0);
    for _ in 0..10 {
        let r = w.step(&d, Watts(400.0));
        rejects += r.migration_rejects;
        aborts += r.migration_aborts;
        retries += r.migration_retries;
        moves += r.migrations.len();
    }
    assert_eq!(retries, 1, "exactly one successful retry");
    assert_eq!(moves, 1, "the app migrates exactly once");
    assert_eq!(
        (rejects, aborts),
        (0, 0),
        "a landed retry must not re-count as a failure"
    );
    assert_eq!(w.stats().migrations, 1);
}

/// A stuck-high sensor must be rejected by the plausibility filter:
/// the healthy server keeps a healthy budget and keeps its workload.
#[test]
fn stuck_high_sensor_does_not_evacuate_healthy_server() {
    let (tree, specs, n_apps) = small_setup(1);
    let mut cfg = ControllerConfig::default();
    cfg.eta1 = 1;
    cfg.consolidation_threshold = 0.0;
    let mut w = Willow::new(tree, specs, cfg).unwrap();
    let d = demands(n_apps, 50.0);
    for _ in 0..5 {
        let _ = w.step(&d, Watts(10_000.0));
    }
    let stuck = Disturbances {
        sensor_override: vec![Some(Celsius(95.0))],
        ..Disturbances::default()
    };
    for _ in 0..30 {
        let r = w.step_with(&d, Watts(10_000.0), &stuck);
        assert!(r.sensor_rejections >= 1, "95 °C reading must be rejected");
        assert!(
            r.server_budget[0] >= Watts(50.0),
            "healthy server must keep a working budget, got {}",
            r.server_budget[0]
        );
    }
    assert_eq!(
        w.locate_app(AppId(0)),
        Some(0),
        "workload must not flee a healthy server on a stuck sensor"
    );
}

/// A stuck-low sensor must not let a hot server overheat: caps keep
/// following the model prediction, not the flattering reading.
#[test]
fn stuck_low_sensor_does_not_cause_thermal_violation() {
    let (tree, mut specs, n_apps) = small_setup(1);
    specs[0].ambient = Celsius(45.0);
    let mut w = Willow::new(tree, specs, ControllerConfig::default()).unwrap();
    let mut d = demands(n_apps, 10.0);
    d[0] = Watts(400.0);
    let stuck = Disturbances {
        sensor_override: vec![Some(Celsius(25.0))],
        ..Disturbances::default()
    };
    for _ in 0..60 {
        let r = w.step_with(&d, Watts(10_000.0), &stuck);
        assert!(
            r.server_temp[0] <= Celsius(70.0 + 1e-6),
            "stuck-low sensor let the server overheat: {}",
            r.server_temp[0]
        );
    }
}

/// Crashed servers are not eligible migration targets.
#[test]
fn crashed_server_not_a_migration_target() {
    let (tree, specs, n_apps) = small_setup(2);
    let mut cfg = ControllerConfig::default();
    cfg.margin = Watts(5.0);
    cfg.eta1 = 1;
    cfg.eta2 = 1000;
    cfg.consolidation_threshold = 0.0;
    cfg.allocation = AllocationPolicy::EqualShare;
    let mut w = Willow::new(tree, specs, cfg).unwrap();
    let mut d = demands(n_apps, 10.0);
    d[0] = Watts(60.0);
    d[1] = Watts(60.0);
    let _ = w.step(&d, Watts(800.0));
    // Server 1 (the sibling that would normally absorb the load) is
    // crashed; any migration must land elsewhere.
    let crash = Disturbances {
        crashed: vec![false, true, false, false],
        ..Disturbances::default()
    };
    let r = w.step_with(&d, Watts(400.0), &crash);
    let crashed_leaf = w.servers()[1].node;
    assert!(
        r.migrations.iter().all(|m| m.to != crashed_leaf),
        "no migration may target a crashed server: {:?}",
        r.migrations
    );
}

// ------------------------------------------------------------------
// Controller crash: open-loop operation and checkpoint recovery
// ------------------------------------------------------------------

#[test]
fn open_loop_freezes_placement_and_trips_watchdogs() {
    let (tree, specs, n_apps) = small_setup(2);
    let mut cfg = ControllerConfig::default();
    cfg.eta1 = 1; // every tick issues directives ⇒ every open-loop tick misses one
    cfg.eta2 = 1000;
    let mut w = Willow::new(tree, specs, cfg).unwrap();
    let d = demands(n_apps, 30.0);
    for _ in 0..5 {
        w.step(&d, Watts(2000.0));
    }
    let before = placement(&w);
    let budgets: Vec<Watts> = w
        .servers()
        .iter()
        .map(|s| w.power().tp[s.node.index()])
        .collect();
    let threshold = w.config().robustness.watchdog_threshold;
    let frac = w.config().robustness.watchdog_cap_fraction;
    let mut r = TickReport::default();
    for k in 1..=6u32 {
        w.step_open_loop(&d, &Disturbances::default(), &mut r);
        assert!(r.migrations.is_empty(), "open loop can never migrate");
        assert_eq!(r.control_messages, 0, "a dead controller sends nothing");
        assert_eq!(r.directives_lost, 4, "every leaf misses its directive");
        for (s, &b0) in w.servers().iter().zip(&budgets) {
            assert!(
                w.power().tp[s.node.index()] <= b0 + Watts(1e-9),
                "open-loop budgets may only tighten"
            );
        }
        if k >= threshold {
            assert!(
                w.watchdogs().iter().all(|wd| wd.tripped),
                "all watchdogs tripped after {threshold} missed directives"
            );
            assert_eq!(r.fallback_servers, 4);
            for s in w.servers() {
                assert!(
                    w.power().tp[s.node.index()].0 <= s.thermal.rating().0 * frac + 1e-9,
                    "tripped fallback cap must bind"
                );
            }
        }
    }
    assert_eq!(placement(&w), before, "placement is frozen while down");
}

#[test]
fn recover_adopts_field_state_and_resolves_in_flight() {
    let (tree, specs, n_apps) = small_setup(2);
    let mut cfg = ControllerConfig::default();
    cfg.margin = Watts(5.0);
    cfg.eta1 = 1;
    cfg.eta2 = 1000;
    cfg.consolidation_threshold = 0.0;
    cfg.allocation = AllocationPolicy::EqualShare;
    let mut w = Willow::new(tree, specs, cfg).unwrap();
    let mut d = demands(n_apps, 10.0);
    d[0] = Watts(60.0);
    d[1] = Watts(60.0);
    let _ = w.step(&d, Watts(800.0));
    // Checkpoint *before* the plunge migrates an app away.
    let mut ckpt = w.snapshot();
    // Forge an in-flight entry in the checkpoint, as if the controller
    // crashed mid-transfer right after checkpointing.
    let stale = ckpt.journal.begin(
        AppId(0),
        w.servers()[0].node,
        w.servers()[1].node,
        Watts(60.0),
        MigrationReason::Demand,
        1,
    );
    ckpt.journal.mark_transferred(stale);
    // The field keeps going: a migration commits post-checkpoint...
    let r = w.step(&d, Watts(400.0));
    assert!(!r.migrations.is_empty(), "setup needs a real migration");
    // ...then the controller dies and the leaves run open-loop.
    let mut report = TickReport::default();
    for _ in 0..10 {
        w.step_open_loop(&d, &Disturbances::default(), &mut report);
    }

    let recovered = Willow::recover(ckpt, &w).unwrap();
    assert_eq!(recovered.tick_count(), w.tick_count(), "clock from field");
    assert_eq!(
        placement(&recovered),
        placement(&w),
        "post-checkpoint migrations must survive recovery (field wins)"
    );
    assert_eq!(recovered.watchdogs(), w.watchdogs());
    assert_eq!(recovered.accepted_temps(), w.accepted_temps());
    assert_eq!(
        recovered.journal().in_flight().count(),
        0,
        "entries left open across the crash are aborted"
    );
    // The recovered controller must be able to keep controlling.
    let mut r2 = recovered;
    let apps_before: usize = r2.servers().iter().map(|s| s.apps.len()).sum();
    let mut rep = TickReport::default();
    for _ in 0..20 {
        r2.step_into(&d, Watts(800.0), &Disturbances::default(), &mut rep);
    }
    let apps_after: usize = r2.servers().iter().map(|s| s.apps.len()).sum();
    assert_eq!(apps_before, apps_after, "apps conserved after recovery");
}

#[test]
fn recover_from_fresh_checkpoint_continues_identically() {
    // When the field has not diverged from the checkpoint (crash of
    // zero length), recovery must be behaviorally invisible: the
    // recovered controller and the uninterrupted one produce identical
    // reports from then on.
    let (tree, specs, n_apps) = small_setup(2);
    let mut cfg = ControllerConfig::default();
    cfg.margin = Watts(5.0);
    cfg.eta1 = 2;
    cfg.eta2 = 7;
    cfg.allocation = AllocationPolicy::EqualShare;
    let mut w = Willow::new(tree, specs, cfg).unwrap();
    let mut d = demands(n_apps, 25.0);
    d[0] = Watts(70.0);
    for t in 0..20 {
        let supply = if t % 6 < 3 { 900.0 } else { 380.0 };
        let _ = w.step(&d, Watts(supply));
    }
    let ckpt = w.snapshot();
    let mut recovered = Willow::recover(ckpt, &w).unwrap();
    let mut ra = TickReport::default();
    let mut rb = TickReport::default();
    for t in 20..60 {
        let supply = if t % 6 < 3 { 900.0 } else { 380.0 };
        w.step_into(&d, Watts(supply), &Disturbances::default(), &mut ra);
        recovered.step_into(&d, Watts(supply), &Disturbances::default(), &mut rb);
        assert_eq!(format!("{ra:?}"), format!("{rb:?}"), "diverged at tick {t}");
    }
}

#[test]
fn recover_rejects_mismatched_field() {
    let (tree, specs, _) = small_setup(1);
    let w = Willow::new(tree, specs, ControllerConfig::default()).unwrap();
    let ckpt = w.snapshot();
    let other_tree = Tree::paper_fig3();
    let other_specs: Vec<ServerSpec> = other_tree
        .leaves()
        .enumerate()
        .map(|(i, leaf)| {
            let app = Application::new(
                AppId(i as u32),
                0,
                &willow_workload::app::SIM_APP_CLASSES[0],
            );
            ServerSpec::simulation_default(leaf).with_apps(vec![app])
        })
        .collect();
    let other = Willow::new(other_tree, other_specs, ControllerConfig::default()).unwrap();
    assert!(matches!(
        Willow::recover(ckpt, &other),
        Err(WillowError::SnapshotShape { .. })
    ));
}

/// Retired-row/recycled-slot aliasing: after `RemoveServer` frees a leaf
/// slot and a later `AddServer` recycles it, the retired roster row still
/// carries the old `NodeId`. A directive-loss roll against the *retired*
/// index must not resurrect a stale budget on the live replacement's leaf
/// (the pre-fix failure: the retired row wrote `tp_old` back into the
/// recycled slot while the live row's watchdog read `missed == 0`, so the
/// auditor flagged a `BudgetOverflow` that no live machine caused).
#[test]
fn retired_row_directive_loss_cannot_touch_recycled_slot() {
    use crate::audit::Auditor;
    use crate::command::Command;
    use crate::server::FenceState;

    let (tree, specs, n_apps) = small_setup(1);
    let mut cfg = ControllerConfig::default();
    cfg.eta1 = 1; // every tick divides supply and issues directives
    let mut w = Willow::new(tree, specs, cfg).unwrap();
    let d = demands(n_apps, 30.0);
    for _ in 0..5 {
        w.step(&d, Watts(2000.0));
    }

    // Drain server 0, retire it, and add a replacement under the same
    // switch: the new leaf recycles server 0's freed arena slot.
    let old_node = w.servers()[0].node;
    let parent = w.tree().parent(old_node).expect("leaf has a parent");
    w.submit_command(Command::Drain { server: 0 });
    for _ in 0..20 {
        w.step(&d, Watts(2000.0));
        if w.servers()[0].fence == FenceState::Fenced {
            break;
        }
    }
    assert_eq!(w.servers()[0].fence, FenceState::Fenced, "drain finished");
    w.submit_command(Command::RemoveServer { server: 0 });
    w.step(&d, Watts(2000.0));
    assert_eq!(w.servers()[0].fence, FenceState::Retired);
    w.submit_command(Command::AddServer {
        parent,
        name: "replacement".into(),
    });
    w.step(&d, Watts(2000.0));
    let new_si = w.servers().len() - 1;
    assert_eq!(
        w.servers()[new_si].node,
        old_node,
        "the add recycles the freed slot (the aliasing premise)"
    );
    // Let the idle replacement accumulate a nonzero budget under ample
    // supply, so a resurrected stale value would be visibly too large.
    for _ in 0..3 {
        w.step(&d, Watts(2000.0));
    }

    let mut auditor = Auditor::new(&w);
    // Supply plunge with a directive-loss roll against the RETIRED row:
    // the retired server receives no directives, so nothing may be
    // counted, no watchdog may move, and the recycled leaf must hold
    // exactly its freshly allocated (tight) share.
    let mut lost = Disturbances::none();
    lost.directive_lost = vec![true, false, false, false, false];
    let r = w.step_with(&d, Watts(10.0), &lost);
    assert_eq!(r.directives_lost, 0, "retired rows miss no directives");
    let wd = w.watchdogs()[0];
    assert!(!wd.tripped && wd.missed == 0, "retired watchdog untouched");
    let children: f64 = w
        .tree()
        .children(parent)
        .iter()
        .map(|c| w.power().tp[c.index()].0)
        .sum();
    let budget = w.power().tp[parent.index()].0;
    assert!(
        children <= budget + 1e-9 + 1e-6 * budget.abs(),
        "children {children} exceed parent budget {budget}: stale budget resurrected"
    );
    assert!(auditor.check(&w).is_empty(), "clean audit after the roll");

    // The open-loop fallback walks the same roster: retired rows must not
    // count as missed directives or repopulate the recycled slot's cap.
    let mut r = TickReport::default();
    w.step_open_loop(&d, &Disturbances::default(), &mut r);
    assert_eq!(
        r.directives_lost,
        w.servers().len() - 1,
        "only live servers miss directives open-loop"
    );
    assert!(auditor.check(&w).is_empty(), "clean audit open-loop");
}

/// The auditor's violation arms need a corrupted controller, and only
/// this module can reach the private state to corrupt it — so the
/// positive (violation-firing) auditor tests live here, while the
/// clean-run tests live in `crate::audit`.
mod audit_detection {
    use super::*;
    use crate::audit::{Auditor, InvariantViolation};

    /// Settled 4-server fixture. The tick-0 consolidation packs the
    /// lightly loaded fleet onto servers 1 and 3 (four apps each) and
    /// puts 0 and 2 to sleep; `eta2 = 1000` keeps that placement
    /// frozen afterwards.
    fn settled() -> Willow {
        let (tree, specs, n_apps) = small_setup(2);
        let config = ControllerConfig {
            eta2: 1000,
            ..ControllerConfig::default()
        };
        let mut w = Willow::new(tree, specs, config).unwrap();
        for _ in 0..8 {
            let _ = w.step(&demands(n_apps, 30.0), Watts(2000.0));
        }
        assert_eq!(w.servers[1].apps.len(), 4);
        assert_eq!(w.servers[3].apps.len(), 4);
        w
    }

    fn has(violations: &[InvariantViolation], pred: impl Fn(&InvariantViolation) -> bool) -> bool {
        violations.iter().any(pred)
    }

    #[test]
    fn clean_controller_audits_clean() {
        let w = settled();
        let mut a = Auditor::new(&w);
        assert!(a.check(&w).is_empty());
        assert_eq!(a.total_violations(), 0);
    }

    #[test]
    fn detects_lost_and_duplicated_apps() {
        let mut w = settled();
        let mut a = Auditor::new(&w);
        // Clone server 1's first app onto server 3: one duplicate.
        let app = w.servers[1].apps[0].clone();
        let dup = app.id;
        w.servers[3].apps.push(app);
        assert!(has(a.check(&w), |v| matches!(
            v,
            InvariantViolation::AppDuplicated { app, copies: 2 } if *app == dup
        )));
        // Remove both copies: the app is now lost.
        w.servers[3].apps.pop();
        let lost = w.servers[1].apps.remove(0).id;
        assert!(has(a.check(&w), |v| matches!(
            v,
            InvariantViolation::AppLost { app } if *app == lost
        )));
        assert_eq!(a.total_violations(), 2);
    }

    #[test]
    fn detects_unknown_app_and_populated_sleeper() {
        let mut w = settled();
        let mut a = Auditor::new(&w);
        w.servers[1]
            .apps
            .push(Application::new(AppId(999), 0, &SIM_APP_CLASSES[0]));
        assert!(has(a.check(&w), |v| matches!(
            v,
            InvariantViolation::AppUnknown {
                app: AppId(999),
                server: 1
            }
        )));
        w.servers[1].apps.pop();
        w.servers[3].active = false;
        assert!(has(a.check(&w), |v| matches!(
            v,
            InvariantViolation::SleepingServerHostsApps { server: 3, apps: 4 }
        )));
    }

    #[test]
    fn detects_budget_overflow_and_stale_loosening() {
        let mut w = settled();
        let mut a = Auditor::new(&w);
        // Grant a leaf more than its parent has: hierarchy overflow.
        let leaf = w.servers[1].node.index();
        let parent = w.tree.parent(w.servers[1].node).unwrap();
        let before = w.power.tp[leaf];
        w.power.tp[leaf] = w.power.tp[parent.index()] + Watts(50.0);
        assert!(has(a.check(&w), |v| matches!(
            v,
            InvariantViolation::BudgetOverflow { node, .. } if *node == parent
        )));
        w.power.tp[leaf] = before;
        // A stale leaf must only tighten: mark it stale across two
        // audits and loosen its budget in between.
        w.watchdog[1].missed = 2;
        assert!(a.check(&w).is_empty());
        w.watchdog[1].missed = 3;
        w.power.tp[leaf] = before + Watts(10.0);
        let violations = a.check(&w);
        assert!(has(violations, |v| matches!(
            v,
            InvariantViolation::LoosenedWhileStale { server: 1, .. }
        )));
        // The stale leaf is excluded from the hierarchy sum, so the
        // loosening does not double-report as an overflow.
        assert!(!has(violations, |v| matches!(
            v,
            InvariantViolation::BudgetOverflow { .. }
        )));
    }

    #[test]
    fn detects_nan_and_negative_watts() {
        let mut w = settled();
        let mut a = Auditor::new(&w);
        let leaf = w.servers[3].node.index();
        w.power.cp[leaf] = Watts(f64::NAN);
        assert!(has(a.check(&w), |v| matches!(
            v,
            InvariantViolation::NonFinite { what: "cp", .. }
        )));
        w.power.cp[leaf] = Watts(-1.0);
        assert!(has(a.check(&w), |v| matches!(
            v,
            InvariantViolation::NegativeWatts { what: "cp", .. }
        )));
        w.power.cp[leaf] = Watts(1.0);
        w.accepted_temp[0] = willow_thermal::units::Celsius(f64::INFINITY);
        assert!(has(a.check(&w), |v| matches!(
            v,
            InvariantViolation::NonFinite {
                what: "accepted_temp",
                ..
            }
        )));
    }

    #[test]
    #[should_panic(expected = "invariant violations at tick")]
    fn panic_mode_panics_on_violation() {
        let mut w = settled();
        let mut a = Auditor::new(&w).panic_on_violation(true);
        w.servers[1].apps.clear();
        w.servers[1].app_demand.clear();
        let _ = a.check(&w);
    }
}
