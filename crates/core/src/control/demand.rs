//! Pipeline stage 3 — demand adaptation (§IV-E): per-level bottom-up bin
//! packing of deficit parcels into surpluses, sibling subtrees first,
//! leftovers passed up for non-local placement. Two of the pipeline's
//! pluggable decision points live here: the packing heuristic and the
//! candidate-target ordering (see [`super::policy`]).

use super::Willow;
use crate::migration::{MigrationReason, MigrationRecord};
use willow_thermal::units::Watts;
use willow_topology::{NodeId, Tree};
use willow_workload::app::AppId;

/// A deficit parcel traveling up the hierarchy: one application that must
/// leave its server.
#[derive(Debug, Clone, Copy)]
pub(super) struct DeficitItem {
    pub(super) server: usize,
    pub(super) app: AppId,
    pub(super) demand: Watts,
    pub(super) reason: MigrationReason,
}

/// Reusable working memory for the demand stage: deficit parcels, their
/// per-level grouping keys, and the buffers of one packing instance.
/// Cleared (capacity retained) instead of reallocated, so a steady-state
/// tick performs zero heap allocations once warmed up. Taken out of the
/// controller with `std::mem::take` for the duration of the stage and put
/// back afterwards.
#[derive(Debug, Default)]
pub(crate) struct DemandStage {
    /// Deficit items still looking for a target (current level).
    pub(super) pending: Vec<DeficitItem>,
    /// Deficit items deferred to the next level up.
    pub(super) next_pending: Vec<DeficitItem>,
    /// Per-item grouping keys: (pmu arena idx, child arena idx, item idx).
    pub(super) keys: Vec<(u32, u32, u32)>,
    /// Items of the group currently being packed (backoff items filtered
    /// straight to the leftovers).
    pub(super) group: Vec<DeficitItem>,
    /// App ordering for per-server deficit selection.
    pub(super) order: Vec<usize>,
    /// Candidate target leaves for one packing instance.
    pub(super) bins: Vec<NodeId>,
    /// Remaining capacity per candidate bin.
    pub(super) bin_caps: Vec<f64>,
    /// Effective item sizes for one packing instance.
    pub(super) sizes: Vec<f64>,
}

impl DemandStage {
    /// Pre-size the per-leaf buffers so even the first tick allocates as
    /// little as possible.
    pub(super) fn for_tree(tree: &Tree) -> Self {
        let leaves = tree.leaves().count();
        DemandStage {
            bins: Vec::with_capacity(leaves),
            bin_caps: Vec::with_capacity(leaves),
            ..DemandStage::default()
        }
    }
}

impl Willow {
    /// True if `leaf` may receive migrations: active, unfenced, not
    /// crashed, and neither it nor any ancestor was flagged as
    /// budget-reduced (§IV-E final rule).
    pub(super) fn target_eligible(&self, leaf: NodeId) -> bool {
        let Some(si) = self.leaf_server[leaf.index()] else {
            return false;
        };
        if !self.servers[si].active
            || !self.servers[si].fence.is_active()
            || self.disturb.crashed(si)
        {
            return false;
        }
        if self.power.reduced[leaf.index()] {
            return false;
        }
        !self
            .tree
            .ancestors(leaf)
            .any(|a| self.power.reduced[a.index()])
    }

    /// Remaining surplus a target server can absorb (margin already
    /// deducted).
    pub(super) fn bin_capacity(&self, leaf: NodeId) -> Watts {
        (self.power.tp[leaf.index()] - self.power.cp[leaf.index()] - self.config.margin)
            .non_negative()
    }

    /// Effective packing size of a demand parcel: the moved demand plus the
    /// temporary cost it charges the target while migrating.
    pub(super) fn effective_size(&self, demand: Watts) -> f64 {
        (demand + self.config.cost_model.node_cost(demand)).0
    }

    /// Bottom-up demand-side adaptation: local packing first, leftovers up.
    pub(super) fn demand_adaptation(
        &mut self,
        tick: u64,
        stage: &mut DemandStage,
        records: &mut Vec<MigrationRecord>,
    ) {
        // Collect deficit items at the leaves.
        self.collect_deficit_items(&mut stage.pending, &mut stage.order);

        // Process levels bottom-up; at each level, each PMU node packs the
        // pending items originating in its subtree into surpluses in its
        // subtree (excluding the origin's child-subtree, already tried).
        for level in 1..=self.tree.height() {
            if stage.pending.is_empty() {
                break;
            }
            // Group items by their PMU node at this level and, within a
            // PMU, by the child subtree containing their origin (already
            // tried one level down). Sorting keys of
            // `(pmu arena idx, child arena idx, item idx)` reproduces the
            // nested-map iteration order exactly: `nodes_at_level` is
            // ascending in arena index, group keys were visited in sorted
            // order, and items within a group in arrival order.
            stage.keys.clear();
            for (idx, item) in stage.pending.iter().enumerate() {
                let mut pmu = self.servers[item.server].node;
                let mut child = pmu;
                while self.tree.level(pmu) < level {
                    child = pmu;
                    pmu = self.tree.parent(pmu).expect("levels reach the root");
                }
                stage
                    .keys
                    .push((pmu.index() as u32, child.index() as u32, idx as u32));
            }
            stage.keys.sort_unstable();
            stage.next_pending.clear();
            let mut i = 0;
            while i < stage.keys.len() {
                let (pmu_idx, child_idx, _) = stage.keys[i];
                let mut j = i + 1;
                while j < stage.keys.len()
                    && stage.keys[j].0 == pmu_idx
                    && stage.keys[j].1 == child_idx
                {
                    j += 1;
                }
                // Backoff items sit this round out: straight to leftovers,
                // ahead of this group's unplaced items.
                stage.group.clear();
                for k in i..j {
                    let item = stage.pending[stage.keys[k].2 as usize];
                    if self.in_backoff(item.app, tick) {
                        stage.next_pending.push(item);
                    } else {
                        stage.group.push(item);
                    }
                }
                self.pack_and_execute(
                    NodeId(pmu_idx),
                    NodeId(child_idx),
                    &stage.group,
                    &mut stage.next_pending,
                    &mut stage.bins,
                    &mut stage.bin_caps,
                    &mut stage.sizes,
                    tick,
                    records,
                );
                i = j;
            }
            std::mem::swap(&mut stage.pending, &mut stage.next_pending);
        }
        // Items left after the root instance stay on their servers; their
        // demand above budget is shed in the physics phase.
    }

    /// Deficit items: for every active server over budget, pick the largest
    /// apps until the remainder fits under `TP − margin` (cost-adjusted).
    /// Fills `items`; `order` is per-server sorting scratch.
    pub(super) fn collect_deficit_items(
        &self,
        items: &mut Vec<DeficitItem>,
        order: &mut Vec<usize>,
    ) {
        items.clear();
        let overhead = self.config.cost_model.node_overhead;
        for (si, server) in self.servers.iter().enumerate() {
            if !server.active {
                continue;
            }
            let leaf = server.node.index();
            // Deficit detection is local: the server compares its own
            // fresh demand view against its budget, regardless of what the
            // hierarchy believes.
            let cp = self.local_cp[leaf];
            let tp = self.power.tp[leaf];
            let excess = (cp - tp + self.config.margin).non_negative();
            if excess.0 <= 1e-9 {
                continue;
            }
            // Shedding `shed` relieves `shed·(1 − overhead)` net of the
            // temporary cost charged back to the source.
            let target_shed = if overhead < 1.0 {
                excess.0 / (1.0 - overhead)
            } else {
                excess.0
            };
            // Settled apps first (Property 4: a demand that migrated stays
            // put for ≥ Δ_f whenever possible), then largest-first to
            // minimize the number of migrations.
            order.clear();
            order.extend(0..server.apps.len());
            let tick = self.tick;
            order.sort_unstable_by(|&a, &b| {
                let recent = |i: usize| {
                    self.last_move
                        .get(&server.apps[i].id)
                        .is_some_and(|&(_, t)| tick.saturating_sub(t) < self.config.pingpong_window)
                };
                recent(a)
                    .cmp(&recent(b)) // settled (false) before recent (true)
                    .then(server.app_demand[b].0.total_cmp(&server.app_demand[a].0))
                    .then(a.cmp(&b))
            });
            let mut shed = 0.0;
            for &idx in order.iter() {
                if shed >= target_shed {
                    break;
                }
                let demand = server.app_demand[idx];
                if demand.0 <= 0.0 {
                    continue;
                }
                shed += demand.0;
                items.push(DeficitItem {
                    server: si,
                    app: server.apps[idx].id,
                    demand,
                    reason: MigrationReason::Demand,
                });
            }
        }
    }

    /// Pack `items` (already backoff-filtered) into eligible surpluses
    /// among `pmu`'s leaves minus those under `child`; execute the
    /// migrations that fit; push leftovers for the next level up.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn pack_and_execute(
        &mut self,
        pmu: NodeId,
        child: NodeId,
        items: &[DeficitItem],
        leftovers: &mut Vec<DeficitItem>,
        bins: &mut Vec<NodeId>,
        bin_caps: &mut Vec<f64>,
        sizes: &mut Vec<f64>,
        tick: u64,
        records: &mut Vec<MigrationRecord>,
    ) {
        // Candidate bins come off the cached Euler-tour range in DFS order;
        // the target policy then fixes their ordering (the default restores
        // the ascending-id order the packing has always seen —
        // `subtree_leaves` returns sorted ids).
        bins.clear();
        for &leaf in self.tree.leaf_range(pmu) {
            if !self.tree.subtree_contains(child, leaf) && self.target_eligible(leaf) {
                bins.push(leaf);
            }
        }
        {
            let ctx = self.policy_ctx();
            self.policies.targets.order_targets(&ctx, bins);
        }
        if bins.is_empty() {
            leftovers.extend_from_slice(items);
            return;
        }
        bin_caps.clear();
        bin_caps.extend(bins.iter().map(|&l| self.bin_capacity(l).0));
        sizes.clear();
        sizes.extend(items.iter().map(|it| self.effective_size(it.demand)));
        self.stats.packing_instances += 1;
        self.stats.items_offered += sizes.len() as u64;
        self.stats.bins_offered += bin_caps.len() as u64;
        let packing = self.policies.packer.pack(sizes, bin_caps);

        for (i, item) in items.iter().enumerate() {
            match packing.assignment[i] {
                Some(b) => {
                    let target_leaf = bins[b];
                    // Property 4 / ping-pong avoidance: never bounce an app
                    // straight back to the host it recently left — defer it
                    // to the next level (other bins) or shed it instead.
                    if self.would_pingpong(item.app, target_leaf, tick)
                        || !self.attempt_migration(item, target_leaf, tick, records)
                    {
                        leftovers.push(*item);
                    }
                }
                None => leftovers.push(*item),
            }
        }
    }
}
