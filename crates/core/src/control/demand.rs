//! Pipeline stage 3 — demand adaptation (§IV-E): per-level bottom-up bin
//! packing of deficit parcels into surpluses, sibling subtrees first,
//! leftovers passed up for non-local placement. Two of the pipeline's
//! pluggable decision points live here: the packing heuristic and the
//! candidate-target ordering (see [`super::policy`]).
//!
//! Sharded sub-steps (bit-for-bit identical to serial at any thread
//! count):
//!
//! * **Deficit collection** — per-shard item lists concatenated in shard
//!   order, which is ascending server order, exactly the serial visit
//!   order.
//! * **Target eligibility** — resolved once per stage run into a per-leaf
//!   cache (`active ∧ unfenced ∧ ¬crashed ∧ ¬reduced-anywhere-above`).
//!   Nothing the packing loop does (migrations charge costs to `cp`/`tp`)
//!   changes any of those inputs, so the cache holds for the whole stage —
//!   and it replaces the `O(height)` ancestor climb the serial code paid
//!   *per candidate bin per level* with an `O(nodes)` top-down sweep.
//! * **Candidate-bin filtering** — wide instances (≥ `PAR_BINS_MIN_LEAVES`
//!   leaves under the PMU) filter the Euler-tour leaf range shard-by-shard
//!   into per-shard lists concatenated in shard order — the same sequence
//!   the serial filter emits.
//!
//! Group packing and migration execution stay serial: each migration
//! mutates the `cp`/`tp` surpluses that every later group must observe,
//! and journal transaction ids, attempt ordinals and record order are all
//! part of the deterministic contract.

use super::planning::PlanningContext;
use super::shard::{shard_range, RawSlice};
use super::Willow;
use crate::migration::{MigrationReason, MigrationRecord};
use willow_thermal::units::Watts;
use willow_topology::{NodeId, Tree};
use willow_workload::app::AppId;

/// Minimum Euler-tour leaf-range width before the candidate-bin filter is
/// worth sharding: below this the pool dispatch costs more than the scan.
/// The cutover only picks the execution path — both paths emit the same
/// bin sequence — so it cannot affect results.
const PAR_BINS_MIN_LEAVES: usize = 4096;

/// A deficit parcel traveling up the hierarchy: one application that must
/// leave its server.
#[derive(Debug, Clone, Copy)]
pub(super) struct DeficitItem {
    pub(super) server: usize,
    pub(super) app: AppId,
    pub(super) demand: Watts,
    pub(super) reason: MigrationReason,
}

/// Reusable working memory for the demand stage: deficit parcels, their
/// per-level grouping keys, the buffers of one packing instance, and the
/// per-shard scratch of the parallel sub-steps. Cleared (capacity
/// retained) instead of reallocated, so a steady-state tick performs zero
/// heap allocations once warmed up. Taken out of the controller with
/// `std::mem::take` for the duration of the stage and put back afterwards.
#[derive(Debug, Default)]
pub(crate) struct DemandStage {
    /// Deficit items still looking for a target (current level).
    pub(super) pending: Vec<DeficitItem>,
    /// Deficit items deferred to the next level up.
    pub(super) next_pending: Vec<DeficitItem>,
    /// Per-item grouping keys: (pmu arena idx, child arena idx, item idx).
    pub(super) keys: Vec<(u32, u32, u32)>,
    /// Items of the group currently being packed (backoff items filtered
    /// straight to the leftovers).
    pub(super) group: Vec<DeficitItem>,
    /// Candidate target leaves for one packing instance.
    pub(super) bins: Vec<NodeId>,
    /// Remaining capacity per candidate bin.
    pub(super) bin_caps: Vec<f64>,
    /// Effective item sizes for one packing instance.
    pub(super) sizes: Vec<f64>,
    /// Per-shard deficit collections, concatenated in shard order (shard
    /// ranges tile ascending server indices, so the concatenation is the
    /// serial collection order).
    pub(super) shard_items: Vec<Vec<DeficitItem>>,
    /// Per-shard app-ordering scratch for deficit selection.
    pub(super) shard_order: Vec<Vec<usize>>,
    /// Per-shard candidate-bin scratch for wide packing instances.
    pub(super) shard_bins: Vec<Vec<NodeId>>,
    /// Arena slot → budget-reduced on itself or any ancestor, refreshed
    /// once per stage run (top-down sweep).
    pub(super) reduced_anc: Vec<bool>,
    /// Leaf arena slot → migration-target eligibility, refreshed once per
    /// stage run.
    pub(super) eligible: Vec<bool>,
}

impl DemandStage {
    /// Pre-size the per-leaf buffers so even the first tick allocates as
    /// little as possible.
    pub(super) fn for_tree(tree: &Tree) -> Self {
        let leaves = tree.leaves().count();
        DemandStage {
            bins: Vec::with_capacity(leaves),
            bin_caps: Vec::with_capacity(leaves),
            reduced_anc: Vec::with_capacity(tree.len()),
            eligible: Vec::with_capacity(tree.len()),
            ..DemandStage::default()
        }
    }
}

impl Willow {
    /// True if `leaf` may receive migrations: active, unfenced, not
    /// crashed, and neither it nor any ancestor was flagged as
    /// budget-reduced (§IV-E final rule). The walking form, used by the
    /// consolidation and live-ops stages; the demand stage resolves the
    /// same predicate into [`DemandStage::eligible`] once per run.
    pub(super) fn target_eligible(&self, leaf: NodeId) -> bool {
        let Some(si) = self.leaf_server[leaf.index()] else {
            return false;
        };
        if !self.servers[si].active
            || !self.servers[si].fence.is_active()
            || self.disturb.crashed(si)
        {
            return false;
        }
        if self.power.reduced[leaf.index()] {
            return false;
        }
        !self
            .tree
            .ancestors(leaf)
            .any(|a| self.power.reduced[a.index()])
    }

    /// Remaining surplus a target server can absorb (margin already
    /// deducted).
    pub(super) fn bin_capacity(&self, leaf: NodeId) -> Watts {
        (self.power.tp[leaf.index()] - self.power.cp[leaf.index()] - self.config.margin)
            .non_negative()
    }

    /// Effective packing size of a demand parcel: the moved demand plus the
    /// temporary cost it charges the target while migrating.
    pub(super) fn effective_size(&self, demand: Watts) -> f64 {
        (demand + self.config.cost_model.node_cost(demand)).0
    }

    /// Bottom-up demand-side adaptation: local packing first, leftovers up.
    pub(super) fn demand_adaptation(
        &mut self,
        tick: u64,
        stage: &mut DemandStage,
        records: &mut Vec<MigrationRecord>,
        plan: &PlanningContext,
    ) {
        // Collect deficit items at the leaves.
        self.collect_deficit_items(stage);
        if stage.pending.is_empty() {
            return;
        }
        // Deficits exist: resolve target eligibility once for the whole
        // stage (none of its inputs change while packing executes).
        self.compute_eligibility(stage);

        // Process levels bottom-up; at each level, each PMU node packs the
        // pending items originating in its subtree into surpluses in its
        // subtree (excluding the origin's child-subtree, already tried).
        for level in 1..=self.tree.height() {
            if stage.pending.is_empty() {
                break;
            }
            // Group items by their PMU node at this level and, within a
            // PMU, by the child subtree containing their origin (already
            // tried one level down). Sorting keys of
            // `(pmu arena idx, child arena idx, item idx)` reproduces the
            // nested-map iteration order exactly: `nodes_at_level` is
            // ascending in arena index, group keys were visited in sorted
            // order, and items within a group in arrival order.
            stage.keys.clear();
            for (idx, item) in stage.pending.iter().enumerate() {
                let mut pmu = self.servers[item.server].node;
                let mut child = pmu;
                while self.tree.level(pmu) < level {
                    child = pmu;
                    pmu = self.tree.parent(pmu).expect("levels reach the root");
                }
                stage
                    .keys
                    .push((pmu.index() as u32, child.index() as u32, idx as u32));
            }
            stage.keys.sort_unstable();
            stage.next_pending.clear();
            let mut i = 0;
            while i < stage.keys.len() {
                let (pmu_idx, child_idx, _) = stage.keys[i];
                let mut j = i + 1;
                while j < stage.keys.len()
                    && stage.keys[j].0 == pmu_idx
                    && stage.keys[j].1 == child_idx
                {
                    j += 1;
                }
                // Backoff items sit this round out: straight to leftovers,
                // ahead of this group's unplaced items.
                stage.group.clear();
                for k in i..j {
                    let item = stage.pending[stage.keys[k].2 as usize];
                    if self.in_backoff(item.app, tick) {
                        stage.next_pending.push(item);
                    } else {
                        stage.group.push(item);
                    }
                }
                self.pack_and_execute(
                    NodeId(pmu_idx),
                    NodeId(child_idx),
                    &stage.group,
                    &mut stage.next_pending,
                    &mut stage.bins,
                    &mut stage.bin_caps,
                    &mut stage.sizes,
                    &stage.eligible,
                    &mut stage.shard_bins,
                    tick,
                    records,
                    plan,
                );
                i = j;
            }
            std::mem::swap(&mut stage.pending, &mut stage.next_pending);
        }
        // Items left after the root instance stay on their servers; their
        // demand above budget is shed in the physics phase.
    }

    /// Deficit items: for every active server over budget, pick the largest
    /// apps until the remainder fits under `TP − margin` (cost-adjusted).
    /// Shards over the roster; fills `stage.pending` in server order.
    #[allow(unsafe_code)] // disjoint shard scratch; see `super::shard`
    pub(super) fn collect_deficit_items(&self, stage: &mut DemandStage) {
        let n = self.servers.len();
        let threads = self.pool.threads();
        stage.shard_items.resize_with(threads, Vec::new);
        stage.shard_order.resize_with(threads, Vec::new);
        {
            let shard_items = RawSlice::new(&mut stage.shard_items);
            let shard_order = RawSlice::new(&mut stage.shard_order);
            let servers = &self.servers;
            let local_cp = &self.local_cp;
            let tp = &self.power.tp;
            let last_move = &self.last_move;
            let margin = self.config.margin;
            let overhead = self.config.cost_model.node_overhead;
            let pingpong_window = self.config.pingpong_window;
            let tick = self.tick;
            self.pool.run(&|k| {
                // SAFETY: each shard touches only its own scratch element.
                let items = unsafe { shard_items.get_mut(k) };
                let order = unsafe { shard_order.get_mut(k) };
                items.clear();
                for si in shard_range(n, threads, k) {
                    let server = &servers[si];
                    if !server.active {
                        continue;
                    }
                    let leaf = server.node.index();
                    // Deficit detection is local: the server compares its
                    // own fresh demand view against its budget, regardless
                    // of what the hierarchy believes.
                    let cp = local_cp[leaf];
                    let tp = tp[leaf];
                    let excess = (cp - tp + margin).non_negative();
                    if excess.0 <= 1e-9 {
                        continue;
                    }
                    // Shedding `shed` relieves `shed·(1 − overhead)` net of
                    // the temporary cost charged back to the source.
                    let target_shed = if overhead < 1.0 {
                        excess.0 / (1.0 - overhead)
                    } else {
                        excess.0
                    };
                    // Settled apps first (Property 4: a demand that
                    // migrated stays put for ≥ Δ_f whenever possible),
                    // then largest-first to minimize migrations.
                    order.clear();
                    order.extend(0..server.apps.len());
                    order.sort_unstable_by(|&a, &b| {
                        let recent = |i: usize| {
                            last_move
                                .get(&server.apps[i].id)
                                .is_some_and(|&(_, t)| tick.saturating_sub(t) < pingpong_window)
                        };
                        recent(a)
                            .cmp(&recent(b)) // settled (false) before recent
                            .then(server.app_demand[b].0.total_cmp(&server.app_demand[a].0))
                            .then(a.cmp(&b))
                    });
                    let mut shed = 0.0;
                    for &idx in order.iter() {
                        if shed >= target_shed {
                            break;
                        }
                        let demand = server.app_demand[idx];
                        if demand.0 <= 0.0 {
                            continue;
                        }
                        shed += demand.0;
                        items.push(DeficitItem {
                            server: si,
                            app: server.apps[idx].id,
                            demand,
                            reason: MigrationReason::Demand,
                        });
                    }
                }
            });
        }
        // Shard ranges tile ascending server indices, so concatenating in
        // shard order reproduces the serial collection order exactly.
        stage.pending.clear();
        for shard in &stage.shard_items {
            stage.pending.extend_from_slice(shard);
        }
    }

    /// Resolve [`Willow::target_eligible`] for every leaf into
    /// `stage.eligible`: one serial top-down sweep folds the reduced flags
    /// down the tree, then the per-leaf roster checks shard across the
    /// pool. Valid for the whole demand stage — migrations change only
    /// `cp`/`tp`, never the fence, activity, crash or reduced inputs.
    #[allow(unsafe_code)] // disjoint per-leaf writes; see `super::shard`
    fn compute_eligibility(&self, stage: &mut DemandStage) {
        let tree = &self.tree;
        stage.reduced_anc.clear();
        stage.reduced_anc.resize(tree.len(), false);
        let root = tree.root();
        stage.reduced_anc[root.index()] = self.power.reduced[root.index()];
        for level in (0..tree.height()).rev() {
            for &node in tree.nodes_at_level(level) {
                let p = tree.parent(node).expect("non-root nodes have parents");
                stage.reduced_anc[node.index()] =
                    self.power.reduced[node.index()] || stage.reduced_anc[p.index()];
            }
        }
        stage.eligible.clear();
        stage.eligible.resize(tree.len(), false);
        let leaves = tree.nodes_at_level(0);
        let threads = self.pool.threads();
        let eligible = RawSlice::new(&mut stage.eligible);
        let reduced_anc = &stage.reduced_anc;
        let servers = &self.servers;
        let leaf_server = &self.leaf_server;
        let disturb = &self.disturb;
        self.pool.run(&|k| {
            for &leaf in &leaves[shard_range(leaves.len(), threads, k)] {
                let i = leaf.index();
                let ok = leaf_server[i].is_some_and(|si| {
                    servers[si].active && servers[si].fence.is_active() && !disturb.crashed(si)
                }) && !reduced_anc[i];
                // SAFETY: every live leaf appears exactly once in the
                // level-0 list, so writes to its slot are race-free.
                unsafe {
                    *eligible.get_mut(i) = ok;
                }
            }
        });
    }

    /// Pack `items` (already backoff-filtered) into eligible surpluses
    /// among `pmu`'s leaves minus those under `child`; execute the
    /// migrations that fit; push leftovers for the next level up.
    #[allow(clippy::too_many_arguments)]
    #[allow(unsafe_code)] // disjoint shard scratch; see `super::shard`
    pub(super) fn pack_and_execute(
        &mut self,
        pmu: NodeId,
        child: NodeId,
        items: &[DeficitItem],
        leftovers: &mut Vec<DeficitItem>,
        bins: &mut Vec<NodeId>,
        bin_caps: &mut Vec<f64>,
        sizes: &mut Vec<f64>,
        eligible: &[bool],
        shard_bins: &mut Vec<Vec<NodeId>>,
        tick: u64,
        records: &mut Vec<MigrationRecord>,
        plan: &PlanningContext,
    ) {
        // Candidate bins come off the cached Euler-tour range in DFS order;
        // the target policy then fixes their ordering (the default restores
        // the ascending-id order the packing has always seen —
        // `subtree_leaves` returns sorted ids).
        bins.clear();
        {
            let leaf_range = self.tree.leaf_range(pmu);
            let threads = self.pool.threads();
            if threads > 1 && leaf_range.len() >= PAR_BINS_MIN_LEAVES {
                shard_bins.resize_with(threads, Vec::new);
                let out = RawSlice::new(shard_bins.as_mut_slice());
                let tree = &self.tree;
                self.pool.run(&|k| {
                    // SAFETY: each shard touches only its own element.
                    let mine = unsafe { out.get_mut(k) };
                    mine.clear();
                    for &leaf in &leaf_range[shard_range(leaf_range.len(), threads, k)] {
                        if !tree.subtree_contains(child, leaf) && eligible[leaf.index()] {
                            mine.push(leaf);
                        }
                    }
                });
                for shard in shard_bins.iter() {
                    bins.extend_from_slice(shard);
                }
            } else {
                for &leaf in leaf_range {
                    if !self.tree.subtree_contains(child, leaf) && eligible[leaf.index()] {
                        bins.push(leaf);
                    }
                }
            }
        }
        {
            let ctx = self.policy_ctx();
            self.policies.targets.order_targets(&ctx, plan, bins);
        }
        if bins.is_empty() {
            leftovers.extend_from_slice(items);
            return;
        }
        bin_caps.clear();
        bin_caps.extend(bins.iter().map(|&l| self.bin_capacity(l).0));
        sizes.clear();
        sizes.extend(items.iter().map(|it| self.effective_size(it.demand)));
        self.stats.packing_instances += 1;
        self.stats.items_offered += sizes.len() as u64;
        self.stats.bins_offered += bin_caps.len() as u64;
        let packing = self.policies.packer.pack(sizes, bin_caps);

        for (i, item) in items.iter().enumerate() {
            match packing.assignment[i] {
                Some(b) => {
                    let target_leaf = bins[b];
                    // Property 4 / ping-pong avoidance: never bounce an app
                    // straight back to the host it recently left — defer it
                    // to the next level (other bins) or shed it instead.
                    if self.would_pingpong(item.app, target_leaf, tick)
                        || !self.attempt_migration(item, target_leaf, tick, records)
                    {
                        leftovers.push(*item);
                    }
                }
                None => leftovers.push(*item),
            }
        }
    }
}
