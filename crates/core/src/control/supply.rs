//! Pipeline stage 2 — supply adaptation (§IV-D): refresh thermal hard
//! caps (Eq. 3 over the `Δ_S` window) and divide the total supply
//! top-down, proportionally to demand and clipped by the caps. Runs every
//! `η1` demand periods. Also home to the stale-directive watchdog and the
//! open-loop (controller-down) budget fallback, which reuse the same cap
//! computation.

use super::planning::{PlanningContext, PREDICTIVE_HEADROOM};
use super::shard::{shard_range, RawSlice};
use super::Willow;
use crate::config::{
    AllocationPolicy, ControllerConfig, ReducedTargetRule, SupplyPolicyChoice, ThermalEstimate,
};
use crate::server::{FenceState, ServerState};
use willow_power::allocation::allocate_proportional_into;
use willow_thermal::limit::power_limit_with_decay;
use willow_thermal::units::{Celsius, Watts};
use willow_topology::Tree;

/// Per-server stale-directive watchdog state (paper-adjacent defense: a
/// leaf that keeps missing its budget directive falls back to a
/// conservative local cap rather than running open-loop forever).
///
/// Public and serializable because it is part of the controller's complete
/// mutable state: a checkpoint that dropped it would silently reset the
/// degraded-mode defenses on restore (see `crate::snapshot`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Watchdog {
    /// Consecutive supply ticks whose budget directive never arrived.
    pub missed: u32,
    /// Whether the conservative fallback cap is currently engaged.
    pub tripped: bool,
}

/// Reusable working memory for the supply stage: child caps, allocation
/// weights and budgets for one interior node's top-down division, plus the
/// water-filling working set. Cleared (capacity retained) instead of
/// reallocated, so a steady-state supply tick performs zero heap
/// allocations once warmed up. Taken out of the controller with
/// `std::mem::take` for the duration of the stage and put back afterwards.
#[derive(Debug, Default)]
pub(crate) struct SupplyStage {
    /// Child hard caps for one interior node.
    pub(super) caps: Vec<Watts>,
    /// Child allocation weights for one interior node.
    pub(super) weights: Vec<Watts>,
    /// Child budgets written by the proportional division.
    pub(super) budgets: Vec<Watts>,
    /// Water-filling working set.
    pub(super) alloc: willow_power::AllocationScratch,
}

impl SupplyStage {
    /// Pre-size the buffers to the tree's maximum branching factor so even
    /// the first supply tick allocates as little as possible.
    pub(super) fn for_tree(tree: &Tree) -> Self {
        let max_branching: usize = (0..=tree.height())
            .map(|l| tree.max_branching_at(l))
            .max()
            .unwrap_or(0);
        SupplyStage {
            caps: Vec::with_capacity(max_branching),
            weights: Vec::with_capacity(max_branching),
            budgets: Vec::with_capacity(max_branching),
            alloc: willow_power::AllocationScratch::default(),
        }
    }
}

/// Free-function core of [`Willow::thermal_cap`]: the thermal hard cap
/// from a server's *accepted* temperature — the reading that passed the
/// plausibility filter — never a raw sensor, so a stuck or noisy sensor
/// cannot zero out a healthy server. Sleeping servers present their
/// wake-up headroom; they are at (or cooling toward) ambient, so this is
/// near their rating. Takes exactly the per-server inputs so the sharded
/// cap refresh can call it without borrowing the whole controller.
fn thermal_cap_of(
    server: &ServerState,
    accepted: Celsius,
    decay_ds: f64,
    config: &ControllerConfig,
) -> Watts {
    match config.thermal_estimate {
        ThermalEstimate::WindowPrediction => {
            // `power_limit` with the decay factor cached at construction
            // (the window is a run constant).
            let limit = if config.delta_s().is_positive() {
                power_limit_with_decay(
                    server.thermal.params(),
                    accepted,
                    server.thermal.ambient(),
                    server.thermal.limit(),
                    decay_ds,
                )
            } else {
                Watts(f64::INFINITY)
            };
            limit.clamp(Watts::ZERO, server.thermal.rating())
        }
        ThermalEstimate::NaiveThrottle => {
            if accepted.0 > server.thermal.limit().0 + 1e-9 {
                Watts::ZERO
            } else {
                server.thermal.rating()
            }
        }
    }
}

/// [`thermal_cap_of`] with the live-ops fence applied: fenced and retired
/// servers present zero capacity, so the proportional division allocates
/// them zero budget — a drained server receives zero budget thereafter.
/// Active and draining servers (even sleeping ones) present their thermal
/// cap; sleeping servers keep advertising wake-up headroom.
fn effective_cap_of(
    server: &ServerState,
    accepted: Celsius,
    decay_ds: f64,
    config: &ControllerConfig,
) -> Watts {
    match server.fence {
        FenceState::Active | FenceState::Draining => {
            thermal_cap_of(server, accepted, decay_ds, config)
        }
        FenceState::Fenced | FenceState::Retired => Watts::ZERO,
    }
}

impl Willow {
    /// Thermal hard cap for server `si` (see [`thermal_cap_of`]). Shared
    /// by the closed-loop supply stage and the open-loop fallback.
    pub(super) fn thermal_cap(&self, si: usize) -> Watts {
        thermal_cap_of(
            &self.servers[si],
            self.accepted_temp[si],
            self.decay_ds[si],
            &self.config,
        )
    }

    /// Count a missed directive for server `si`'s watchdog, tripping it at
    /// the configured threshold, and return the tighten-only fallback
    /// budget: `base` (the budget the leaf keeps applying) clipped by the
    /// locally known thermal cap, and by the conservative fallback
    /// fraction of the rating once tripped.
    fn missed_directive_fallback(&mut self, si: usize, base: Watts, cap: Watts) -> Watts {
        self.counters.directives_lost += 1;
        let wd = &mut self.watchdog[si];
        wd.missed += 1;
        if !wd.tripped && wd.missed >= self.config.robustness.watchdog_threshold {
            wd.tripped = true;
            self.counters.watchdog_trips += 1;
        }
        let mut fallback = base.min(cap);
        if wd.tripped {
            let cap_w =
                self.servers[si].thermal.rating().0 * self.config.robustness.watchdog_cap_fraction;
            fallback = fallback.min(Watts(cap_w));
        }
        fallback
    }

    /// Refresh hard caps from the thermal model and divide the supply
    /// top-down proportional to demand (§IV-D).
    ///
    /// Only the per-server cap refresh shards across the pool (it is the
    /// `O(servers)` half, with an exponential per server under
    /// `WindowPrediction`). The top-down division, the watchdog pass and
    /// the reduced-flag pass stay serial: the division is inherently
    /// level-sequential and the other two are cheap linear scans whose
    /// counter updates would need ordering anyway.
    #[allow(unsafe_code)] // disjoint shard slicing; see `super::shard`
    pub(super) fn supply_adaptation(
        &mut self,
        supply: Watts,
        stage: &mut SupplyStage,
        plan: &PlanningContext,
    ) {
        let n = self.servers.len();
        let threads = self.pool.threads();
        {
            let cap = RawSlice::new(&mut self.power.cap);
            let servers = &self.servers;
            let accepted_temp = &self.accepted_temp;
            let decay_ds = &self.decay_ds;
            let config = &self.config;
            let leaf_server = &self.leaf_server;
            self.pool.run(&|k| {
                for si in shard_range(n, threads, k) {
                    let leaf = servers[si].node.index();
                    // Slot-ownership gate: a retired row must not write a
                    // reused slot. Its own effective cap is zero, and its
                    // slot was zeroed at retirement, so skipping the write
                    // is value-identical to the serial loop.
                    if leaf_server[leaf] == Some(si) {
                        let c =
                            effective_cap_of(&servers[si], accepted_temp[si], decay_ds[si], config);
                        // SAFETY: exactly one roster row owns any leaf
                        // slot, so this scattered write is race-free.
                        unsafe {
                            *cap.get_mut(leaf) = c;
                        }
                    }
                }
            });
        }
        self.power.aggregate_caps(&self.tree);

        self.power.tp_old.copy_from_slice(&self.power.tp);
        let root = self.tree.root();
        let mut root_budget = supply.min(self.power.cap[root.index()]);
        // Predictive pre-tightening: if the supply forecast shows a dip
        // within the next two supply periods, start shrinking the root
        // budget toward it now (floored at current demand plus headroom —
        // see `PREDICTIVE_HEADROOM`), so evacuations off thermally-capped
        // servers begin a period before the dip instead of during it.
        // Tighten-only (an extra `.min`), so optimistic forecasts can
        // never loosen the physical budget.
        if self.config.supply_policy == SupplyPolicyChoice::Predictive {
            if let Some(dip) = plan
                .predicted_supply(1)
                .map(|p1| p1.min(plan.predicted_supply(2).unwrap_or(p1)))
            {
                let floor = self.power.cp[root.index()] * PREDICTIVE_HEADROOM;
                root_budget = root_budget.min(dip.max(floor));
            }
        }
        self.power.tp[root.index()] = root_budget;
        for level in (1..=self.tree.height()).rev() {
            for &node in self.tree.nodes_at_level(level) {
                let children = self.tree.children(node);
                stage.caps.clear();
                stage
                    .caps
                    .extend(children.iter().map(|c| self.power.cap[c.index()]));
                // The allocation "demand" weights depend on the policy.
                // `ProportionalToCapacity` weights *are* the caps, so that
                // arm borrows `stage.caps` directly instead of copying it.
                stage.weights.clear();
                match self.config.allocation {
                    AllocationPolicy::ProportionalToDemand => stage
                        .weights
                        .extend(children.iter().map(|c| self.power.cp[c.index()])),
                    AllocationPolicy::EqualShare => {
                        stage.weights.extend(children.iter().map(|_| Watts(1.0)));
                    }
                    AllocationPolicy::ProportionalToCapacity => {}
                }
                let weights: &[Watts] =
                    if self.config.allocation == AllocationPolicy::ProportionalToCapacity {
                        &stage.caps
                    } else {
                        &stage.weights
                    };
                allocate_proportional_into(
                    self.power.tp[node.index()],
                    weights,
                    &stage.caps,
                    &mut stage.budgets,
                    &mut stage.alloc,
                )
                .expect("validated inputs");
                for (c, &b) in children.iter().zip(&stage.budgets) {
                    self.power.tp[c.index()] = b;
                }
            }
        }

        // Stale-directive watchdog. A leaf whose directive is lost never
        // sees the freshly allocated budget: it keeps its previously
        // applied one, clipped by its locally known thermal cap — i.e. the
        // effective budget can only *tighten*, never loosen, without a
        // fresh directive. After `watchdog_threshold` consecutive misses
        // the leaf self-imposes a conservative fallback cap (a fraction of
        // its rating) until a directive gets through again.
        for si in 0..self.servers.len() {
            let leaf = self.servers[si].node.index();
            // Slot-ownership gate (as in the cap refresh above): a retired
            // row receives no directives, and its arena slot may since have
            // been recycled by a live replacement — rolling its directive
            // loss here would resurrect a stale budget on the live leaf.
            if self.leaf_server[leaf] != Some(si) {
                continue;
            }
            if self.disturb.directive_lost(si) {
                let base = self.power.tp_old[leaf];
                let cap = self.power.cap[leaf];
                self.power.tp[leaf] = self.missed_directive_fallback(si, base, cap);
            } else {
                self.watchdog[si] = Watchdog::default();
            }
        }

        // Budget-reduction flags for the unidirectional target rule (after
        // the watchdog, so degraded leaves read as reduced targets).
        for id in self.tree.ids() {
            let i = id.index();
            let reduced = match self.config.reduced_rule {
                ReducedTargetRule::Off => false,
                ReducedTargetRule::Strict => self.power.tp[i].0 < self.power.tp_old[i].0 - 1e-9,
                ReducedTargetRule::Disproportionate => {
                    let old = self.power.tp_old[i].0;
                    let new = self.power.tp[i].0;
                    if old <= 0.0 || new >= old {
                        false
                    } else {
                        match self.tree.parent(id) {
                            None => false, // global events never flag the root
                            Some(p) => {
                                let p_old = self.power.tp_old[p.index()].0;
                                let p_new = self.power.tp[p.index()].0;
                                let parent_ratio = if p_old > 0.0 { p_new / p_old } else { 1.0 };
                                new / old < parent_ratio - 1e-6
                            }
                        }
                    }
                }
            };
            self.power.reduced[i] = reduced;
        }
    }

    /// The supply-tick fallback with the controller down: every leaf's
    /// directive is missing, so each refreshes its *own* thermal cap from
    /// its accepted temperature (that computation is local) and applies
    /// the same tighten-only fallback it uses for an individually lost
    /// directive. The base here is the leaf's currently *applied* budget
    /// (`tp`): with the controller down there is no freshly allocated
    /// budget for `tp_old` to snapshot.
    pub(super) fn open_loop_supply_fallback(&mut self) {
        for si in 0..self.servers.len() {
            let leaf = self.servers[si].node.index();
            // Retired rows own no slot: they miss no directives and must
            // not repopulate the (possibly recycled) leaf's cap or budget.
            if self.leaf_server[leaf] != Some(si) {
                continue;
            }
            let cap = self.thermal_cap(si);
            self.power.cap[leaf] = cap;
            let base = self.power.tp[leaf];
            self.power.tp[leaf] = self.missed_directive_fallback(si, base, cap);
        }
    }
}
