//! Pluggable policy decision points of the control pipeline.
//!
//! The pipeline's *structure* — what happens in which stage, the margins,
//! the unidirectional triggers, the transactional migration protocol — is
//! fixed; these traits parameterize three decisions *inside* the stages:
//!
//! * which packing heuristic matches deficit parcels with surplus bins
//!   (stage 3) — the existing [`Packer`] trait, selected by
//!   `ControllerConfig::packer` via [`willow_binpack::packer_for`];
//! * how the eligible migration-target bins of one packing instance are
//!   ordered before packing ([`MigrationTargetPolicy`]);
//! * in which order consolidation evacuates victims and fills receivers
//!   ([`ConsolidationOrderPolicy`]).
//!
//! The defaults ([`AscendingIdTargets`], [`HotZonesFirst`]) reproduce the
//! paper's behavior bit-for-bit; [`ControlPolicies::for_config`] is what
//! [`Willow::new`](super::Willow::new) installs, selecting implementations
//! from `ControllerConfig::{packer, target_policy, consolidation_policy}`.
//! The built-in alternatives ([`BestFitTargets`], [`ThermalHeadroomTargets`],
//! [`EmptiestFirst`], [`MostHeadroomReceivers`]) are raced head-to-head by
//! the `repro ablate` harness; out-of-tree policies can still plug in via
//! [`Willow::with_policies`](super::Willow::with_policies).
//!
//! Policies must be deterministic: the differential and snapshot-restore
//! harnesses compare trajectories bit-for-bit, and a restored controller
//! reconstructs its policies from config alone. Policy *objects* carry no
//! serialized state; history and forecasts live in the controller's
//! [`PlanningContext`](super::planning::PlanningContext) (which *is*
//! checkpointed) and reach every callback as the read-only `plan`
//! argument. The built-in orderings ignore it — horizon-aware behavior is
//! opt-in per policy, and ignoring the context is always bit-neutral.

use crate::config::{ConsolidationPolicyChoice, ControllerConfig, TargetPolicyChoice};
use crate::control::planning::PlanningContext;
use crate::server::ServerState;
use crate::state::PowerState;
use willow_binpack::{packer_for, Packer};
use willow_topology::{NodeId, Tree};

/// Read-only controller state handed to policy callbacks.
pub struct PolicyCtx<'a> {
    /// The PMU tree.
    pub tree: &'a Tree,
    /// Current power state (CP/TP/caps per node).
    pub power: &'a PowerState,
    /// Server states, indexed by server order.
    pub servers: &'a [ServerState],
    /// Arena index → server index (None for interior nodes).
    pub leaf_server: &'a [Option<usize>],
    /// The controller configuration.
    pub config: &'a ControllerConfig,
}

impl<'a> PolicyCtx<'a> {
    /// Utilization of the server at `leaf`, or `0.0` for non-server nodes.
    #[must_use]
    pub fn leaf_utilization(&self, leaf: NodeId) -> f64 {
        self.leaf_server[leaf.index()].map_or(0.0, |i| self.servers[i].utilization())
    }
}

/// Orders the eligible target bins of one demand-side packing instance.
/// The packer sees the bins in this order, so for order-sensitive packers
/// (first-fit and friends) this decides which surplus absorbs a parcel
/// when several could.
pub trait MigrationTargetPolicy {
    /// Reorder `targets` in place. `targets` arrives in DFS (Euler-tour)
    /// order; the ordering must be deterministic. `plan` is the planning
    /// seam (demand history and forecasts per server) — policies that
    /// don't look ahead simply ignore it.
    fn order_targets(&self, ctx: &PolicyCtx<'_>, plan: &PlanningContext, targets: &mut Vec<NodeId>);
}

/// The default target ordering: ascending arena id — the deterministic
/// "first eligible server in tree order" the paper's evaluation uses.
#[derive(Debug, Clone, Copy, Default)]
pub struct AscendingIdTargets;

impl MigrationTargetPolicy for AscendingIdTargets {
    fn order_targets(
        &self,
        _ctx: &PolicyCtx<'_>,
        _plan: &PlanningContext,
        targets: &mut Vec<NodeId>,
    ) {
        targets.sort_unstable();
    }
}

/// Best-fit target ordering: tightest surplus first, so a parcel lands in
/// the server that it fills most completely and large surpluses stay whole
/// for large parcels. Note the capacity-sorting packers (FFDLR, FFD, BFD)
/// re-sort bins by capacity internally, so for them this ordering decides
/// *equal-capacity* ties (common on homogeneous fleets) via the utilization
/// tie-break; order-preserving packers (next-fit) honor it fully.
#[derive(Debug, Clone, Copy, Default)]
pub struct BestFitTargets;

impl MigrationTargetPolicy for BestFitTargets {
    fn order_targets(
        &self,
        ctx: &PolicyCtx<'_>,
        _plan: &PlanningContext,
        targets: &mut Vec<NodeId>,
    ) {
        let surplus = |n: NodeId| {
            (ctx.power.tp[n.index()].0 - ctx.power.cp[n.index()].0 - ctx.config.margin.0).max(0.0)
        };
        targets.sort_unstable_by(|a, b| {
            surplus(*a)
                .total_cmp(&surplus(*b))
                .then(
                    ctx.leaf_utilization(*b)
                        .total_cmp(&ctx.leaf_utilization(*a)),
                )
                .then(a.cmp(b))
        });
    }
}

/// Thermal-headroom target ordering: coolest server first, measured as the
/// gap between a node's hard (thermal) cap and its current demand — migrated
/// load lands where the thermal model has the most room before throttling.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThermalHeadroomTargets;

impl MigrationTargetPolicy for ThermalHeadroomTargets {
    fn order_targets(
        &self,
        ctx: &PolicyCtx<'_>,
        _plan: &PlanningContext,
        targets: &mut Vec<NodeId>,
    ) {
        let headroom = |n: NodeId| ctx.power.cap[n.index()].0 - ctx.power.cp[n.index()].0;
        targets.sort_unstable_by(|a, b| headroom(*b).total_cmp(&headroom(*a)).then(a.cmp(b)));
    }
}

/// Orders consolidation's victims (servers to evacuate) and receivers
/// (bins to evacuate into). Receivers are ordered *within* each locality
/// class — siblings and non-siblings separately — so no policy can defeat
/// the sibling-first preference.
pub trait ConsolidationOrderPolicy {
    /// Reorder candidate victim server indices in place; consolidation
    /// evacuates them in this order. Must be deterministic. `plan` is the
    /// planning seam (demand history and forecasts per server).
    fn order_victims(&self, ctx: &PolicyCtx<'_>, plan: &PlanningContext, victims: &mut Vec<usize>);
    /// Reorder one locality class of receiver bins in place; evacuation
    /// first-fits into them in this order. Must be deterministic.
    fn order_receivers(
        &self,
        ctx: &PolicyCtx<'_>,
        plan: &PlanningContext,
        receivers: &mut [NodeId],
    );
}

/// The default consolidation ordering. Victims: thermally constrained
/// (lowest hard cap, i.e. hot zones) first, then emptiest first — the
/// paper's Fig. 7 notes that Willow "tries to move as much work away from
/// these \[hot\] servers as possible … hence they remain shut down for more
/// time". Receivers: coolest zone (largest hard cap) first so consolidated
/// load lands where thermal headroom is, then most-utilized first so
/// consolidation fills the fullest servers (the FFDLR "run every server at
/// full utilization" rationale) instead of cascading load through
/// near-idle ones.
#[derive(Debug, Clone, Copy, Default)]
pub struct HotZonesFirst;

impl ConsolidationOrderPolicy for HotZonesFirst {
    fn order_victims(
        &self,
        ctx: &PolicyCtx<'_>,
        _plan: &PlanningContext,
        victims: &mut Vec<usize>,
    ) {
        victims.sort_unstable_by(|&a, &b| {
            let cap = |i: usize| ctx.power.cap[ctx.servers[i].node.index()].0;
            cap(a)
                .total_cmp(&cap(b))
                .then(
                    ctx.servers[a]
                        .utilization()
                        .total_cmp(&ctx.servers[b].utilization()),
                )
                .then(a.cmp(&b))
        });
    }

    fn order_receivers(
        &self,
        ctx: &PolicyCtx<'_>,
        _plan: &PlanningContext,
        receivers: &mut [NodeId],
    ) {
        receivers.sort_unstable_by(|a, b| {
            let cap = |n: NodeId| ctx.power.cap[n.index()].0;
            cap(*b)
                .total_cmp(&cap(*a))
                .then(
                    ctx.leaf_utilization(*b)
                        .total_cmp(&ctx.leaf_utilization(*a)),
                )
                .then(a.cmp(b))
        });
    }
}

/// Emptiest-first consolidation ordering: victims ascending by utilization
/// (the emptiest server is the cheapest to evacuate completely, so servers
/// empty — and sleep — at the highest rate per migrated watt), receivers
/// most-utilized first (fill the fullest running servers, never fan load
/// out across near-idle ones). Ignores thermal zoning entirely — the
/// ablation foil for [`HotZonesFirst`].
#[derive(Debug, Clone, Copy, Default)]
pub struct EmptiestFirst;

impl ConsolidationOrderPolicy for EmptiestFirst {
    fn order_victims(
        &self,
        ctx: &PolicyCtx<'_>,
        _plan: &PlanningContext,
        victims: &mut Vec<usize>,
    ) {
        victims.sort_unstable_by(|&a, &b| {
            ctx.servers[a]
                .utilization()
                .total_cmp(&ctx.servers[b].utilization())
                .then(a.cmp(&b))
        });
    }

    fn order_receivers(
        &self,
        ctx: &PolicyCtx<'_>,
        _plan: &PlanningContext,
        receivers: &mut [NodeId],
    ) {
        receivers.sort_unstable_by(|a, b| {
            ctx.leaf_utilization(*b)
                .total_cmp(&ctx.leaf_utilization(*a))
                .then(a.cmp(b))
        });
    }
}

/// Headroom-seeking consolidation ordering: victims as in [`HotZonesFirst`]
/// (hot zones evacuate first), but receivers ordered by largest *power*
/// headroom (budget minus current demand) instead of largest hard cap —
/// evacuated load goes where budget is actually available right now, which
/// can absorb a whole victim without cascading first-fit spills.
#[derive(Debug, Clone, Copy, Default)]
pub struct MostHeadroomReceivers;

impl ConsolidationOrderPolicy for MostHeadroomReceivers {
    fn order_victims(&self, ctx: &PolicyCtx<'_>, plan: &PlanningContext, victims: &mut Vec<usize>) {
        HotZonesFirst.order_victims(ctx, plan, victims);
    }

    fn order_receivers(
        &self,
        ctx: &PolicyCtx<'_>,
        _plan: &PlanningContext,
        receivers: &mut [NodeId],
    ) {
        receivers.sort_unstable_by(|a, b| {
            let headroom = |n: NodeId| ctx.power.tp[n.index()].0 - ctx.power.cp[n.index()].0;
            headroom(*b).total_cmp(&headroom(*a)).then(a.cmp(b))
        });
    }
}

/// The pipeline's pluggable decision points, boxed once at construction so
/// hot paths never re-box or re-dispatch beyond one vtable call.
pub struct ControlPolicies {
    /// Packing heuristic for demand-side adaptation (stage 3).
    pub packer: Box<dyn Packer>,
    /// Target-bin ordering for demand-side packing instances (stage 3).
    pub targets: Box<dyn MigrationTargetPolicy>,
    /// Victim/receiver ordering for consolidation (stage 4).
    pub consolidation: Box<dyn ConsolidationOrderPolicy>,
}

impl ControlPolicies {
    /// The policies `config` selects: the configured packer, target
    /// ordering and consolidation ordering. Every choice is constructed
    /// from config alone (no state), so checkpoint restore and the frozen
    /// reference reconstruct identical policies from the same config.
    #[must_use]
    pub fn for_config(config: &ControllerConfig) -> Self {
        let targets: Box<dyn MigrationTargetPolicy> = match config.target_policy {
            TargetPolicyChoice::AscendingId => Box::new(AscendingIdTargets),
            TargetPolicyChoice::BestFit => Box::new(BestFitTargets),
            TargetPolicyChoice::ThermalHeadroom => Box::new(ThermalHeadroomTargets),
        };
        let consolidation: Box<dyn ConsolidationOrderPolicy> = match config.consolidation_policy {
            ConsolidationPolicyChoice::HotZonesFirst => Box::new(HotZonesFirst),
            ConsolidationPolicyChoice::EmptiestFirst => Box::new(EmptiestFirst),
            ConsolidationPolicyChoice::MostHeadroomReceivers => Box::new(MostHeadroomReceivers),
        };
        ControlPolicies {
            packer: packer_for(config.packer),
            targets,
            consolidation,
        }
    }
}
