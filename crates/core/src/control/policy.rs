//! Pluggable policy decision points of the control pipeline.
//!
//! The pipeline's *structure* — what happens in which stage, the margins,
//! the unidirectional triggers, the transactional migration protocol — is
//! fixed; these traits parameterize three decisions *inside* the stages:
//!
//! * which packing heuristic matches deficit parcels with surplus bins
//!   (stage 3) — the existing [`Packer`] trait, selected by
//!   `ControllerConfig::packer` via [`willow_binpack::packer_for`];
//! * how the eligible migration-target bins of one packing instance are
//!   ordered before packing ([`MigrationTargetPolicy`]);
//! * in which order consolidation evacuates victims and fills receivers
//!   ([`ConsolidationOrderPolicy`]).
//!
//! The defaults ([`AscendingIdTargets`], [`HotZonesFirst`]) reproduce the
//! paper's behavior bit-for-bit; [`ControlPolicies::for_config`] is what
//! [`Willow::new`](super::Willow::new) installs. Alternatives plug in via
//! [`Willow::with_policies`](super::Willow::with_policies).
//!
//! Policies must be deterministic: the differential and snapshot-restore
//! harnesses compare trajectories bit-for-bit, and a restored controller
//! reconstructs its policies from config alone (they carry no serialized
//! state).

use crate::config::ControllerConfig;
use crate::server::ServerState;
use crate::state::PowerState;
use willow_binpack::{packer_for, Packer};
use willow_topology::{NodeId, Tree};

/// Read-only controller state handed to policy callbacks.
pub struct PolicyCtx<'a> {
    /// The PMU tree.
    pub tree: &'a Tree,
    /// Current power state (CP/TP/caps per node).
    pub power: &'a PowerState,
    /// Server states, indexed by server order.
    pub servers: &'a [ServerState],
    /// Arena index → server index (None for interior nodes).
    pub leaf_server: &'a [Option<usize>],
    /// The controller configuration.
    pub config: &'a ControllerConfig,
}

impl<'a> PolicyCtx<'a> {
    /// Utilization of the server at `leaf`, or `0.0` for non-server nodes.
    #[must_use]
    pub fn leaf_utilization(&self, leaf: NodeId) -> f64 {
        self.leaf_server[leaf.index()].map_or(0.0, |i| self.servers[i].utilization())
    }
}

/// Orders the eligible target bins of one demand-side packing instance.
/// The packer sees the bins in this order, so for order-sensitive packers
/// (first-fit and friends) this decides which surplus absorbs a parcel
/// when several could.
pub trait MigrationTargetPolicy {
    /// Reorder `targets` in place. `targets` arrives in DFS (Euler-tour)
    /// order; the ordering must be deterministic.
    fn order_targets(&self, ctx: &PolicyCtx<'_>, targets: &mut Vec<NodeId>);
}

/// The default target ordering: ascending arena id — the deterministic
/// "first eligible server in tree order" the paper's evaluation uses.
#[derive(Debug, Clone, Copy, Default)]
pub struct AscendingIdTargets;

impl MigrationTargetPolicy for AscendingIdTargets {
    fn order_targets(&self, _ctx: &PolicyCtx<'_>, targets: &mut Vec<NodeId>) {
        targets.sort_unstable();
    }
}

/// Orders consolidation's victims (servers to evacuate) and receivers
/// (bins to evacuate into). Receivers are ordered *within* each locality
/// class — siblings and non-siblings separately — so no policy can defeat
/// the sibling-first preference.
pub trait ConsolidationOrderPolicy {
    /// Reorder candidate victim server indices in place; consolidation
    /// evacuates them in this order. Must be deterministic.
    fn order_victims(&self, ctx: &PolicyCtx<'_>, victims: &mut Vec<usize>);
    /// Reorder one locality class of receiver bins in place; evacuation
    /// first-fits into them in this order. Must be deterministic.
    fn order_receivers(&self, ctx: &PolicyCtx<'_>, receivers: &mut [NodeId]);
}

/// The default consolidation ordering. Victims: thermally constrained
/// (lowest hard cap, i.e. hot zones) first, then emptiest first — the
/// paper's Fig. 7 notes that Willow "tries to move as much work away from
/// these \[hot\] servers as possible … hence they remain shut down for more
/// time". Receivers: coolest zone (largest hard cap) first so consolidated
/// load lands where thermal headroom is, then most-utilized first so
/// consolidation fills the fullest servers (the FFDLR "run every server at
/// full utilization" rationale) instead of cascading load through
/// near-idle ones.
#[derive(Debug, Clone, Copy, Default)]
pub struct HotZonesFirst;

impl ConsolidationOrderPolicy for HotZonesFirst {
    fn order_victims(&self, ctx: &PolicyCtx<'_>, victims: &mut Vec<usize>) {
        victims.sort_unstable_by(|&a, &b| {
            let cap = |i: usize| ctx.power.cap[ctx.servers[i].node.index()].0;
            cap(a)
                .total_cmp(&cap(b))
                .then(
                    ctx.servers[a]
                        .utilization()
                        .total_cmp(&ctx.servers[b].utilization()),
                )
                .then(a.cmp(&b))
        });
    }

    fn order_receivers(&self, ctx: &PolicyCtx<'_>, receivers: &mut [NodeId]) {
        receivers.sort_unstable_by(|a, b| {
            let cap = |n: NodeId| ctx.power.cap[n.index()].0;
            cap(*b)
                .total_cmp(&cap(*a))
                .then(
                    ctx.leaf_utilization(*b)
                        .total_cmp(&ctx.leaf_utilization(*a)),
                )
                .then(a.cmp(b))
        });
    }
}

/// The pipeline's pluggable decision points, boxed once at construction so
/// hot paths never re-box or re-dispatch beyond one vtable call.
pub struct ControlPolicies {
    /// Packing heuristic for demand-side adaptation (stage 3).
    pub packer: Box<dyn Packer>,
    /// Target-bin ordering for demand-side packing instances (stage 3).
    pub targets: Box<dyn MigrationTargetPolicy>,
    /// Victim/receiver ordering for consolidation (stage 4).
    pub consolidation: Box<dyn ConsolidationOrderPolicy>,
}

impl ControlPolicies {
    /// The default policies for `config`: the configured packer plus the
    /// paper's target and consolidation orderings.
    #[must_use]
    pub fn for_config(config: &ControllerConfig) -> Self {
        ControlPolicies {
            packer: packer_for(config.packer),
            targets: Box::new(AscendingIdTargets),
            consolidation: Box::new(HotZonesFirst),
        }
    }
}
