//! Pipeline stage 5 — physics: each server draws `min(demand, budget)`,
//! sheds the shortfall by QoS class, advances its RC thermal model by
//! `Δ_D`, and runs the sensor plausibility filter. Shared verbatim by
//! closed-loop and open-loop (controller-down) ticks.
//!
//! The stage runs in two phases so it can shard across the worker pool
//! without changing a single output bit:
//!
//! * **Phase A** (parallel over server shards) — everything whose writes
//!   are per-server disjoint: draw, thermal advance, sensor filter, the
//!   per-server report rows, plus per-server *scratch* for the values the
//!   serial code used to fold on the fly (shortfall, shed-by-class).
//! * **Phase B** (serial) — the order-sensitive float folds, replayed in
//!   server order from the scratch so the sums associate exactly like the
//!   serial loop did, and the fabric's bottom-up query accounting.
//!
//! With `threads == 1` phase A is a plain loop on the control thread; the
//! split costs two cache-warm passes over per-server scratch and nothing
//! else.

use super::shard::{shard_range, RawSlice};
use super::Willow;
use crate::migration::TickReport;
use crate::server::FenceState;
use std::sync::atomic::{AtomicUsize, Ordering};
use willow_thermal::model::step_temperature_with_decay;
use willow_thermal::units::{Celsius, Watts};
use willow_topology::Tree;

/// Reusable working memory for the physics stage: per-server parallel
/// scratch plus the fabric's bulk-query sums. Cleared (capacity retained)
/// instead of reallocated, so a steady-state tick performs zero heap
/// allocations once warmed up.
#[derive(Debug, Default)]
pub(crate) struct PhysicsStage {
    /// Per-server shortfall `(demand − budget)⁺`, folded serially in
    /// phase B so `dropped` sums in exactly the serial order.
    pub(super) shortfall: Vec<f64>,
    /// Per-server shed-by-QoS-class plan (meaningful only where
    /// `shortfall > 0`), folded serially in phase B.
    pub(super) shed: Vec<[Watts; 3]>,
    /// Query units per leaf arena slot for the fabric's bulk recording.
    /// Interior and tombstone slots stay zero (tombstone leaves are never
    /// read — they appear at no level).
    pub(super) leaf_units: Vec<f64>,
    /// Subtree-sum scratch for [`willow_network::Fabric::record_query_bulk`].
    pub(super) fabric_sums: Vec<f64>,
}

impl PhysicsStage {
    /// Pre-size the per-server and per-node buffers so even the first
    /// physics tick allocates as little as possible.
    pub(super) fn for_tree(tree: &Tree, servers: usize) -> Self {
        PhysicsStage {
            shortfall: Vec::with_capacity(servers),
            shed: Vec::with_capacity(servers),
            leaf_units: vec![0.0; tree.len()],
            fabric_sums: Vec::with_capacity(tree.len()),
        }
    }
}

impl Willow {
    /// The per-server physical update shared by closed- and open-loop
    /// ticks: draw `min(local demand, budget)`, account shed demand by QoS
    /// class, advance the RC thermal model, run the sensor plausibility
    /// filter, record query traffic, and fill the report's per-server and
    /// imbalance vectors.
    #[allow(unsafe_code)] // disjoint shard slicing; see `super::shard`
    pub(super) fn physics_phase(&mut self, report: &mut TickReport) {
        let n = self.servers.len();
        let threads = self.pool.threads();
        let mut stage = std::mem::take(&mut self.physics_stage);
        stage.shortfall.clear();
        stage.shortfall.resize(n, 0.0);
        stage.shed.clear();
        stage.shed.resize(n, [Watts::ZERO; 3]);
        stage.leaf_units.resize(self.tree.len(), 0.0);
        report.server_power.resize(n, Watts::ZERO);
        report.server_budget.resize(n, Watts::ZERO);
        report.server_temp.resize(n, Celsius(0.0));
        report.server_active.resize(n, false);
        let sensor_rejections = AtomicUsize::new(0);

        // ---------------------------------------- phase A (parallel)
        {
            let servers = RawSlice::new(&mut self.servers);
            let accepted_temp = RawSlice::new(&mut self.accepted_temp);
            let shortfall = RawSlice::new(&mut stage.shortfall);
            let shed = RawSlice::new(&mut stage.shed);
            let leaf_units = RawSlice::new(&mut stage.leaf_units);
            let out_power = RawSlice::new(&mut report.server_power);
            let out_budget = RawSlice::new(&mut report.server_budget);
            let out_temp = RawSlice::new(&mut report.server_temp);
            let out_active = RawSlice::new(&mut report.server_active);
            let tp = &self.power.tp;
            let local_cp = &self.local_cp;
            let decay_dd = &self.decay_dd;
            let leaf_server = &self.leaf_server;
            let disturb = &self.disturb;
            let sensor_slack = self.config.robustness.sensor_slack;
            let qtpw = self.config.query_traffic_per_watt;
            let rejections = &sensor_rejections;
            self.pool.run(&|k| {
                let range = shard_range(n, threads, k);
                // SAFETY: shard ranges over server indices are pairwise
                // disjoint; every slice below is indexed by server.
                let servers = unsafe { servers.range_mut(range.clone()) };
                let accepted_temp = unsafe { accepted_temp.range_mut(range.clone()) };
                let shortfall = unsafe { shortfall.range_mut(range.clone()) };
                let shed = unsafe { shed.range_mut(range.clone()) };
                let out_power = unsafe { out_power.range_mut(range.clone()) };
                let out_budget = unsafe { out_budget.range_mut(range.clone()) };
                let out_temp = unsafe { out_temp.range_mut(range.clone()) };
                let out_active = unsafe { out_active.range_mut(range.clone()) };
                for (off, server) in servers.iter_mut().enumerate() {
                    let si = range.start + off;
                    let leaf = server.node.index();
                    // A retired server's arena slot may have been reused by
                    // a later-added server; never report the new owner's
                    // budget on the retired row.
                    let budget = if server.fence == FenceState::Retired {
                        Watts::ZERO
                    } else {
                        tp[leaf]
                    };
                    // The server draws against its *own* demand view:
                    // report loss fools the hierarchy, not the machine.
                    let demand = if server.active {
                        local_cp[leaf]
                    } else {
                        Watts::ZERO
                    };
                    let drawn = demand.min(budget);
                    let sf = (demand - budget).non_negative();
                    shortfall[off] = sf.0;
                    if sf.0 > 0.0 {
                        // Degraded operation: attribute the shed demand to
                        // QoS classes, lowest priority first (§IV-E / §VI).
                        shed[off] =
                            crate::shedding::shed_by_priority(&server.apps, &server.app_demand, sf)
                                .by_class;
                    }
                    server.thermal.advance_with_decay(drawn, decay_dd[si]);
                    // Sensor plausibility filter: accept the (possibly
                    // faulted) reading only if it is within `sensor_slack`
                    // of what the RC model predicts from the last accepted
                    // temperature under the power actually drawn; otherwise
                    // keep running on the model.
                    let measured = disturb.measured_temp(si, server.thermal.temperature());
                    let predicted = step_temperature_with_decay(
                        server.thermal.params(),
                        accepted_temp[off],
                        server.thermal.ambient(),
                        drawn,
                        decay_dd[si],
                    );
                    accepted_temp[off] = if (measured.0 - predicted.0).abs() <= sensor_slack {
                        measured
                    } else {
                        rejections.fetch_add(1, Ordering::Relaxed);
                        predicted
                    };
                    // Indirect network impact: query traffic follows the
                    // workload. Gated on slot ownership — a retired row
                    // whose leaf slot was reused must not clobber the live
                    // owner's entry (the retired row's drawn is zero, and
                    // its slot either has no leaf or belongs to the new
                    // owner).
                    if leaf_server[leaf] == Some(si) {
                        // SAFETY: exactly one roster row owns any leaf
                        // slot, so this scattered write is race-free.
                        unsafe {
                            *leaf_units.get_mut(leaf) = drawn.0 * qtpw;
                        }
                    }
                    out_power[off] = drawn;
                    out_budget[off] = budget;
                    out_temp[off] = server.thermal.temperature();
                    out_active[off] = server.active;
                }
            });
        }
        // Integer addition commutes, so the relaxed atomic total is
        // identical at every thread count.
        self.counters.sensor_rejections += sensor_rejections.into_inner();

        // ----------------------------------------- phase B (serial)
        // Order-sensitive float folds replayed in server order: the sums
        // associate exactly as the serial loop's did, so the result is
        // bit-for-bit thread-count-independent.
        let mut dropped = Watts::ZERO;
        for si in 0..n {
            let sf = Watts(stage.shortfall[si]);
            dropped += sf;
            if sf.0 > 0.0 {
                for (acc, class_shed) in report.shed_by_priority.iter_mut().zip(stage.shed[si]) {
                    *acc += class_shed;
                }
            }
        }
        self.fabric
            .record_query_bulk(&self.tree, &stage.leaf_units, &mut stage.fabric_sums);
        self.physics_stage = stage;
        report.dropped_demand = dropped;
        self.last_dropped = dropped;
        for level in 0..=self.tree.height() {
            report
                .imbalance
                .push(self.power.level_imbalance(&self.tree, level));
        }
    }

    /// Copy the period's fault/defense counters into the report tail —
    /// shared by [`Willow::step_into`] and [`Willow::step_open_loop`].
    pub(super) fn publish_counters(&mut self, report: &mut TickReport) {
        report.reports_lost = self.counters.reports_lost;
        report.directives_lost = self.counters.directives_lost;
        report.migration_rejects = self.counters.migration_rejects;
        report.migration_aborts = self.counters.migration_aborts;
        report.migration_retries = self.counters.migration_retries;
        report.watchdog_trips = self.counters.watchdog_trips;
        report.sensor_rejections = self.counters.sensor_rejections;
        report.fallback_servers = self.watchdog.iter().filter(|w| w.tripped).count();
    }
}
