//! Pipeline stage 5 — physics: each server draws `min(demand, budget)`,
//! sheds the shortfall by QoS class, advances its RC thermal model by
//! `Δ_D`, and runs the sensor plausibility filter. Shared verbatim by
//! closed-loop and open-loop (controller-down) ticks.

use super::Willow;
use crate::migration::TickReport;
use willow_thermal::model::step_temperature_with_decay;
use willow_thermal::units::Watts;

impl Willow {
    /// The per-server physical update shared by closed- and open-loop
    /// ticks: draw `min(local demand, budget)`, account shed demand by QoS
    /// class, advance the RC thermal model, run the sensor plausibility
    /// filter, record query traffic, and fill the report's per-server and
    /// imbalance vectors.
    pub(super) fn physics_phase(&mut self, report: &mut TickReport) {
        let mut dropped = Watts::ZERO;
        for (si, server) in self.servers.iter_mut().enumerate() {
            let leaf = server.node.index();
            // A retired server's arena slot may have been reused by a
            // later-added server; never report the new owner's budget on
            // the retired row.
            let budget = if server.fence == crate::server::FenceState::Retired {
                Watts::ZERO
            } else {
                self.power.tp[leaf]
            };
            // The server draws against its *own* demand view: report loss
            // fools the hierarchy, not the machine itself.
            let demand = if server.active {
                self.local_cp[leaf]
            } else {
                Watts::ZERO
            };
            let drawn = demand.min(budget);
            let shortfall = (demand - budget).non_negative();
            dropped += shortfall;
            if shortfall.0 > 0.0 {
                // Degraded operation: attribute the shed demand to QoS
                // classes, lowest priority first (§IV-E / §VI).
                let plan =
                    crate::shedding::shed_by_priority(&server.apps, &server.app_demand, shortfall);
                for (acc, class_shed) in report.shed_by_priority.iter_mut().zip(plan.by_class) {
                    *acc += class_shed;
                }
            }
            server.thermal.advance_with_decay(drawn, self.decay_dd[si]);
            // Sensor plausibility filter: accept the (possibly faulted)
            // reading only if it is within `sensor_slack` of what the RC
            // model predicts from the last accepted temperature under the
            // power actually drawn; otherwise keep running on the model.
            let measured = self.disturb.measured_temp(si, server.thermal.temperature());
            let predicted = step_temperature_with_decay(
                server.thermal.params(),
                self.accepted_temp[si],
                server.thermal.ambient(),
                drawn,
                self.decay_dd[si],
            );
            self.accepted_temp[si] =
                if (measured.0 - predicted.0).abs() <= self.config.robustness.sensor_slack {
                    measured
                } else {
                    self.counters.sensor_rejections += 1;
                    predicted
                };
            // Indirect network impact: query traffic follows the workload.
            self.fabric.record_query(
                &self.tree,
                server.node,
                drawn.0 * self.config.query_traffic_per_watt,
            );
            report.server_power.push(drawn);
            report.server_budget.push(budget);
            report.server_temp.push(server.thermal.temperature());
            report.server_active.push(server.active);
        }
        report.dropped_demand = dropped;
        self.last_dropped = dropped;
        for level in 0..=self.tree.height() {
            report
                .imbalance
                .push(self.power.level_imbalance(&self.tree, level));
        }
    }

    /// Copy the period's fault/defense counters into the report tail —
    /// shared by [`Willow::step_into`] and [`Willow::step_open_loop`].
    pub(super) fn publish_counters(&mut self, report: &mut TickReport) {
        report.reports_lost = self.counters.reports_lost;
        report.directives_lost = self.counters.directives_lost;
        report.migration_rejects = self.counters.migration_rejects;
        report.migration_aborts = self.counters.migration_aborts;
        report.migration_retries = self.counters.migration_retries;
        report.watchdog_trips = self.counters.watchdog_trips;
        report.sensor_rejections = self.counters.sensor_rejections;
        report.fallback_servers = self.watchdog.iter().filter(|w| w.tripped).count();
    }
}
