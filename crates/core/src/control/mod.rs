//! The Willow controller: a staged control pipeline for hierarchical
//! supply/demand adaptation, local-first migration planning, and
//! consolidation.
//!
//! One [`Willow::step`] call is one demand period `Δ_D`, orchestrated by
//! [`Willow::step_into`] as five pipeline stages, each in its own
//! submodule:
//!
//! 1. **[`measure`]** — raw per-app demands (supplied by the caller) plus
//!    pending migration costs are smoothed (Eq. 4) into leaf `CP` values
//!    and aggregated up the tree (one upward control message per link).
//! 2. **[`supply`]** — every `η1` periods, hard caps are refreshed from
//!    the thermal model (Eq. 3 over the `Δ_S` window), and the total
//!    supply is divided top-down proportionally to demand, clipped by caps
//!    (one downward message per link; Property 3: ≤ 2 messages per link per
//!    period).
//! 3. **[`demand`]** — per-level bottom-up bin packing of deficits into
//!    surpluses: local (sibling) surpluses first, leftovers passed up for
//!    non-local placement, margins enforced at both ends, costs charged as
//!    temporary demand, residual deficits shed.
//! 4. **[`consolidate`]** — every `η2` periods, servers below the
//!    utilization threshold try to empty themselves (local targets
//!    preferred); emptied servers sleep. Sleeping servers may be woken when
//!    demand was shed.
//! 5. **[`physics`]** — each server draws `min(demand, budget)` and its RC
//!    thermal state advances by `Δ_D`.
//!
//! The transactional migration machinery (prepare → transfer → commit,
//! ping-pong suppression, retry backoff) that stages 3 and 4 share lives in
//! [`migrate`]; sampled spans and counters in [`telemetry`]. The live-ops
//! command plane ([`liveops`]) executes queued operator commands at a
//! fixed point between stages 1 and 2, so reconfigurations land at a
//! deterministic, replayable position in every tick.
//!
//! Three decision points inside the stages are pluggable via the traits in
//! [`policy`] (see [`Willow::with_policies`]): which packing heuristic
//! matches deficits with surpluses, how candidate migration targets are
//! ordered, and in which order consolidation picks its victims and
//! receivers. The defaults reproduce the paper's behavior exactly.

use crate::command::{Command, PendingCommand};
use crate::config::ControllerConfig;
use crate::disturbance::Disturbances;
use crate::migration::TickReport;
use crate::server::FenceState;
use crate::server::{ServerSpec, ServerState};
use crate::state::PowerState;
use crate::txn::MigrationJournal;
use std::collections::HashMap;
use willow_network::Fabric;
use willow_thermal::model::decay_factor;
use willow_thermal::units::{Celsius, Watts};
use willow_topology::{NodeId, Tree};
use willow_workload::app::AppId;

pub mod consolidate;
pub mod demand;
pub mod liveops;
pub mod measure;
pub mod migrate;
pub mod physics;
pub mod planning;
pub mod policy;
pub mod shard;
pub mod supply;
pub mod telemetry;

#[cfg(test)]
mod fault_tests;
#[cfg(test)]
mod tests;
#[cfg(test)]
mod testutil;

pub use migrate::Backoff;
pub use planning::{
    ForecastModel, Forecaster, HistoryRing, PlanSeries, PlanningContext, HISTORY_DEPTH,
};
pub use policy::{
    AscendingIdTargets, BestFitTargets, ConsolidationOrderPolicy, ControlPolicies, EmptiestFirst,
    HotZonesFirst, MigrationTargetPolicy, MostHeadroomReceivers, PolicyCtx, ThermalHeadroomTargets,
};
pub use supply::Watchdog;
pub use telemetry::SPAN_SAMPLE_PERIOD;

use consolidate::ConsolidateStage;
use demand::DemandStage;
use physics::PhysicsStage;
use shard::ShardPool;
use supply::SupplyStage;
use telemetry::{
    ControllerTelemetry, SLOT_AGGREGATE, SLOT_ALLOCATE, SLOT_CONSOLIDATE, SLOT_GAUGES,
    SLOT_PLAN_MIGRATIONS, SLOT_THERMAL_UPDATE,
};

/// Errors from [`Willow::new`].
#[derive(Debug, Clone, PartialEq)]
pub enum WillowError {
    /// Config invariant violated.
    Config(crate::config::ConfigError),
    /// The server specs do not cover every leaf exactly once.
    LeafCoverage {
        /// Leaves in the tree.
        leaves: usize,
        /// Server specs supplied.
        specs: usize,
    },
    /// A spec references a non-leaf node.
    NotALeaf(NodeId),
    /// Two specs reference the same leaf.
    DuplicateLeaf(NodeId),
    /// Two applications share an id.
    DuplicateApp(AppId),
    /// A snapshot's auxiliary state vectors do not match its topology
    /// (wrong length for the tree / server count it carries).
    SnapshotShape {
        /// Which snapshot field is malformed.
        field: &'static str,
        /// Entries found.
        found: usize,
        /// Entries required by the snapshot's own topology.
        expected: usize,
    },
}

impl std::fmt::Display for WillowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WillowError::Config(e) => write!(f, "invalid config: {e}"),
            WillowError::LeafCoverage { leaves, specs } => {
                write!(f, "{specs} server specs for {leaves} leaves")
            }
            WillowError::NotALeaf(n) => write!(f, "node {n} is not a leaf"),
            WillowError::DuplicateLeaf(n) => write!(f, "leaf {n} specified twice"),
            WillowError::DuplicateApp(a) => write!(f, "application {a} hosted twice"),
            WillowError::SnapshotShape {
                field,
                found,
                expected,
            } => {
                write!(
                    f,
                    "snapshot field `{field}` has {found} entries, topology requires {expected}"
                )
            }
        }
    }
}

impl std::error::Error for WillowError {}

/// Fault and defense events observed during the current period.
#[derive(Debug, Clone, Copy, Default)]
pub(super) struct FaultCounters {
    pub(super) reports_lost: usize,
    pub(super) directives_lost: usize,
    pub(super) migration_rejects: usize,
    pub(super) migration_aborts: usize,
    pub(super) migration_retries: usize,
    pub(super) watchdog_trips: usize,
    pub(super) sensor_rejections: usize,
}

/// Cumulative operation counters backing the paper's §V-A2 complexity
/// analysis: the distributed scheme solves one pod-sized packing instance
/// per PMU node per period, so instances scale with the node count and the
/// work per instance with the branching factor — not with the data center
/// as a whole.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ControlStats {
    /// Bin-packing instances solved (demand-side adaptation).
    pub packing_instances: u64,
    /// Deficit items offered across all instances.
    pub items_offered: u64,
    /// Bins (candidate targets) offered across all instances.
    pub bins_offered: u64,
    /// Control messages exchanged on tree links.
    pub messages: u64,
    /// Migrations executed (both reasons).
    pub migrations: u64,
}

/// The Willow control system. See the module docs for the pipeline model.
pub struct Willow {
    pub(super) tree: Tree,
    pub(super) config: ControllerConfig,
    pub(super) servers: Vec<ServerState>,
    /// Arena index → server index (None for interior nodes).
    pub(super) leaf_server: Vec<Option<usize>>,
    pub(super) power: PowerState,
    pub(super) fabric: Fabric,
    pub(super) tick: u64,
    /// For each app: the server it last migrated *from* and when. Ping-pong
    /// is defined as the paper does — "migrates demand from server A to B
    /// and then immediately from B to A" — i.e. a return to the previous
    /// host within the `Δ_f` window.
    pub(super) last_move: HashMap<AppId, (NodeId, u64)>,
    /// Demand shed last period (drives wake-on-deficit).
    pub(super) last_dropped: Watts,
    /// Cumulative operation counters.
    pub(super) stats: ControlStats,
    /// Each leaf's *own* view of its smoothed demand, indexed like
    /// `power.cp`. Identical to `power.cp` in fault-free operation; under
    /// report loss `power.cp` keeps the hierarchy's stale view while this
    /// stays current — physics and local deficit detection use this.
    pub(super) local_cp: Vec<Watts>,
    /// Stale-directive watchdog per server.
    pub(super) watchdog: Vec<Watchdog>,
    /// Last temperature reading per server that passed the plausibility
    /// filter; caps and predictions are computed from this, never from a
    /// raw (possibly faulted) sensor.
    pub(super) accepted_temp: Vec<Celsius>,
    /// Per-server decay factor `e^(−c2·Δ_D)` for the physics update —
    /// `c2` and the demand period never change within a run, so the
    /// exponential is evaluated once at construction instead of twice per
    /// server per tick.
    pub(super) decay_dd: Vec<f64>,
    /// Per-server decay factor `e^(−c2·Δ_S)` for the thermal-cap
    /// prediction on supply ticks.
    pub(super) decay_ds: Vec<f64>,
    /// Retry backoff for apps whose migrations recently failed.
    pub(super) backoff: HashMap<AppId, Backoff>,
    /// Write-ahead journal of migration transactions (see `crate::txn`):
    /// every migration runs prepare → transfer → commit through it, so a
    /// crash or dead link mid-flight can never orphan or duplicate an app.
    pub(super) journal: MigrationJournal,
    /// Disturbances being applied to the period currently in progress.
    pub(super) disturb: Disturbances,
    /// Migration attempts made so far this period (indexes into the
    /// pre-rolled outcome list).
    pub(super) mig_attempts: usize,
    /// Fault/defense events observed this period.
    pub(super) counters: FaultCounters,
    /// Per-stage reusable working memory: a steady-state tick performs
    /// zero heap allocations once these have warmed up.
    pub(super) supply_stage: SupplyStage,
    /// Demand-adaptation working memory (deficit parcels, packing buffers).
    pub(super) demand_stage: DemandStage,
    /// Consolidation working memory (candidates, evacuation plans).
    pub(super) consolidate_stage: ConsolidateStage,
    /// Physics-stage working memory (per-server shortfall/shed scratch and
    /// the fabric's bottom-up query sums).
    pub(super) physics_stage: PhysicsStage,
    /// Persistent worker pool for the sharded stages. `threads == 1` (the
    /// default) runs every stage serially on the control thread; any other
    /// count shards per-server and per-leaf loops bit-for-bit identically
    /// (see [`shard`]).
    pub(super) pool: ShardPool,
    /// The pluggable policy decision points (packing heuristic, target
    /// ordering, consolidation ordering), boxed once at construction.
    pub(super) policies: ControlPolicies,
    /// The horizon-aware planning seam (see [`planning`]): history rings
    /// and forecasters for root supply, root demand, and every roster
    /// server, updated once per tick and handed read-only to stages 2–4
    /// and the policy traits. Checkpointed, so restored controllers keep
    /// forecasting bit-for-bit.
    pub(super) planning: PlanningContext,
    /// Telemetry handles (disabled until [`Willow::attach_telemetry`]).
    pub(super) tel: ControllerTelemetry,
    /// Live-ops commands awaiting processing (see [`liveops`]). Part of
    /// the checkpointed state.
    pub(super) pending: Vec<PendingCommand>,
    /// Next command correlation id to assign.
    pub(super) next_command_id: u64,
    /// Adaptation paused by [`crate::command::Command::Pause`]: supply,
    /// demand and consolidation stages are skipped; measurement, command
    /// processing and physics keep running every tick.
    pub(super) paused: bool,
}

impl Willow {
    /// Build a controller for `tree` with one [`ServerSpec`] per leaf and
    /// the default policies (the paper's behavior).
    pub fn new(
        tree: Tree,
        specs: Vec<ServerSpec>,
        config: ControllerConfig,
    ) -> Result<Self, WillowError> {
        let policies = ControlPolicies::for_config(&config);
        Willow::with_policies(tree, specs, config, policies)
    }

    /// [`Willow::new`] with explicit [`ControlPolicies`] — the extension
    /// point for plugging alternative packing heuristics, target orderings
    /// or consolidation orderings into the pipeline. The stage structure
    /// (and every guarantee that comes from it: margins, unidirectional
    /// triggers, transactional migrations) is unaffected by the policies.
    pub fn with_policies(
        tree: Tree,
        specs: Vec<ServerSpec>,
        config: ControllerConfig,
        policies: ControlPolicies,
    ) -> Result<Self, WillowError> {
        config.validate().map_err(WillowError::Config)?;
        let leaves: Vec<NodeId> = tree.leaves().collect();
        if specs.len() != leaves.len() {
            return Err(WillowError::LeafCoverage {
                leaves: leaves.len(),
                specs: specs.len(),
            });
        }
        let mut leaf_server = vec![None; tree.len()];
        let mut servers = Vec::with_capacity(specs.len());
        let mut seen_apps = HashMap::new();
        for spec in &specs {
            if !tree.is_leaf(spec.node) {
                return Err(WillowError::NotALeaf(spec.node));
            }
            if leaf_server[spec.node.index()].is_some() {
                return Err(WillowError::DuplicateLeaf(spec.node));
            }
            for app in &spec.apps {
                if seen_apps.insert(app.id, spec.node).is_some() {
                    return Err(WillowError::DuplicateApp(app.id));
                }
            }
            leaf_server[spec.node.index()] = Some(servers.len());
            servers.push(ServerState::from_spec_with_smoother(
                spec,
                crate::server::DemandSmoother::new(config.smoother, config.alpha),
            ));
        }
        let power = PowerState::new(&tree);
        let fabric = Fabric::new(&tree);
        let accepted_temp = servers.iter().map(|s| s.thermal.temperature()).collect();
        let decay_dd = servers
            .iter()
            .map(|s| decay_factor(s.thermal.params(), config.delta_d))
            .collect();
        let decay_ds = servers
            .iter()
            .map(|s| decay_factor(s.thermal.params(), config.delta_s()))
            .collect();
        let watchdog = vec![Watchdog::default(); servers.len()];
        let local_cp = vec![Watts::ZERO; tree.len()];
        let supply_stage = SupplyStage::for_tree(&tree);
        let demand_stage = DemandStage::for_tree(&tree);
        let consolidate_stage = ConsolidateStage::for_tree(&tree, servers.len());
        let physics_stage = PhysicsStage::for_tree(&tree, servers.len());
        let pool = ShardPool::new(shard::resolve_threads(config.threads));
        let planning = PlanningContext::for_servers(servers.len());
        Ok(Willow {
            tree,
            config,
            servers,
            leaf_server,
            power,
            fabric,
            tick: 0,
            last_move: HashMap::new(),
            last_dropped: Watts::ZERO,
            stats: ControlStats::default(),
            local_cp,
            watchdog,
            accepted_temp,
            decay_dd,
            decay_ds,
            backoff: HashMap::new(),
            journal: MigrationJournal::default(),
            disturb: Disturbances::default(),
            mig_attempts: 0,
            counters: FaultCounters::default(),
            supply_stage,
            demand_stage,
            consolidate_stage,
            physics_stage,
            pool,
            policies,
            planning,
            tel: ControllerTelemetry::default(),
            pending: Vec::new(),
            next_command_id: 0,
            paused: false,
        })
    }

    /// Register this controller's metrics — per-phase span histograms,
    /// migration/abort/watchdog counters, per-level budget-deficit gauges
    /// and fabric traffic gauges — on `registry` and start recording into
    /// it. Attaching to a disabled registry (or never attaching) leaves
    /// every record a no-op; recording itself never allocates or locks, so
    /// the steady-state zero-allocation tick invariant holds either way.
    pub fn attach_telemetry(&mut self, registry: &willow_telemetry::TelemetryRegistry) {
        self.tel = ControllerTelemetry::register(registry, self.tree.height());
    }

    /// The PMU tree.
    #[must_use]
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Immutable view of server states (indexed by server order).
    #[must_use]
    pub fn servers(&self) -> &[ServerState] {
        &self.servers
    }

    /// The switch fabric's traffic counters for the current period.
    #[must_use]
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Current power state (CP/TP/caps per node).
    #[must_use]
    pub fn power(&self) -> &PowerState {
        &self.power
    }

    /// Cumulative operation counters since construction.
    #[must_use]
    pub fn stats(&self) -> ControlStats {
        self.stats
    }

    /// The demand-period counter (number of completed `step` calls).
    #[must_use]
    pub fn tick_count(&self) -> u64 {
        self.tick
    }

    /// Ping-pong bookkeeping as a serializable list, sorted by app id.
    #[must_use]
    pub fn last_moves(&self) -> Vec<(AppId, NodeId, u64)> {
        let mut out = Vec::new();
        self.last_moves_into(&mut out);
        out
    }

    /// [`Willow::last_moves`] into a caller-provided buffer (cleared
    /// first), so periodic checkpointing can reuse one allocation.
    pub fn last_moves_into(&self, out: &mut Vec<(AppId, NodeId, u64)>) {
        out.clear();
        out.extend(
            self.last_move
                .iter()
                .map(|(&app, &(from, t))| (app, from, t)),
        );
        // App ids are unique map keys, so the unstable sort is total.
        out.sort_unstable_by_key(|(app, _, _)| *app);
    }

    /// Demand shed in the last completed period.
    #[must_use]
    pub fn last_dropped(&self) -> Watts {
        self.last_dropped
    }

    /// Per-server stale-directive watchdog state (indexed by server order).
    #[must_use]
    pub fn watchdogs(&self) -> &[Watchdog] {
        &self.watchdog
    }

    /// Last temperature per server that passed the plausibility filter
    /// (indexed by server order). Caps and predictions derive from these,
    /// never from raw sensor readings.
    #[must_use]
    pub fn accepted_temps(&self) -> &[Celsius] {
        &self.accepted_temp
    }

    /// Each leaf's own view of its smoothed demand, indexed by arena node
    /// id (interior entries are unused and stay zero). Identical to
    /// `power().cp` in fault-free operation; diverges under report loss.
    #[must_use]
    pub fn local_demands(&self) -> &[Watts] {
        &self.local_cp
    }

    /// Migration retry backoff as a serializable list, sorted by app id.
    #[must_use]
    pub fn backoffs(&self) -> Vec<(AppId, Backoff)> {
        let mut out = Vec::new();
        self.backoffs_into(&mut out);
        out
    }

    /// [`Willow::backoffs`] into a caller-provided buffer (cleared first),
    /// so periodic checkpointing can reuse one allocation.
    pub fn backoffs_into(&self, out: &mut Vec<(AppId, Backoff)>) {
        out.clear();
        out.extend(self.backoff.iter().map(|(&app, &b)| (app, b)));
        // App ids are unique map keys, so the unstable sort is total.
        out.sort_unstable_by_key(|(app, _)| *app);
    }

    /// The migration-transaction journal: open transactions plus recently
    /// closed ones (retained for duplicate-commit detection).
    #[must_use]
    pub fn journal(&self) -> &MigrationJournal {
        &self.journal
    }

    /// The controller's planning memory: demand/supply history rings and
    /// forecaster state (see [`crate::control::planning`]).
    #[must_use]
    pub fn planning(&self) -> &PlanningContext {
        &self.planning
    }

    /// Rebuild a controller from a previously captured snapshot (the
    /// checkpoint/restore path — see `crate::snapshot`). Validates the
    /// config, the leaf coverage of the server states, and the shape of
    /// every auxiliary state vector against the snapshot's own topology.
    ///
    /// Policies are not part of the serialized state: the restored
    /// controller runs the defaults for its config.
    pub(crate) fn from_parts(
        snapshot: crate::snapshot::WillowSnapshot,
    ) -> Result<Willow, WillowError> {
        let crate::snapshot::WillowSnapshot {
            tree,
            config,
            servers,
            power,
            tick,
            last_moves,
            last_dropped,
            local_cp,
            watchdog,
            accepted_temp,
            backoff,
            stats,
            journal,
            pending,
            next_command_id,
            paused,
            planning,
        } = snapshot;
        config.validate().map_err(WillowError::Config)?;
        // Retired servers own no leaf (their slot was tombstoned at
        // removal), so only live roster entries must cover the leaves.
        let leaves = tree.leaves().count();
        let live = servers
            .iter()
            .filter(|s| s.fence != FenceState::Retired)
            .count();
        if live != leaves {
            return Err(WillowError::LeafCoverage {
                leaves,
                specs: live,
            });
        }
        let shape = |field: &'static str, found: usize, expected: usize| {
            if found == expected {
                Ok(())
            } else {
                Err(WillowError::SnapshotShape {
                    field,
                    found,
                    expected,
                })
            }
        };
        shape("local_cp", local_cp.len(), tree.len())?;
        shape("watchdog", watchdog.len(), servers.len())?;
        shape("accepted_temp", accepted_temp.len(), servers.len())?;
        // Pre-planning snapshots carry no context; restart the forecasts
        // from scratch rather than rejecting the checkpoint.
        let planning = match planning {
            Some(p) => {
                shape("planning", p.leaves.len(), servers.len())?;
                p
            }
            None => PlanningContext::for_servers(servers.len()),
        };
        let mut leaf_server = vec![None; tree.len()];
        for (si, server) in servers.iter().enumerate() {
            if server.fence == FenceState::Retired {
                continue;
            }
            if !tree.is_leaf(server.node) {
                return Err(WillowError::NotALeaf(server.node));
            }
            if leaf_server[server.node.index()].is_some() {
                return Err(WillowError::DuplicateLeaf(server.node));
            }
            leaf_server[server.node.index()] = Some(si);
        }
        let fabric = Fabric::new(&tree);
        let decay_dd = servers
            .iter()
            .map(|s| decay_factor(s.thermal.params(), config.delta_d))
            .collect();
        let decay_ds = servers
            .iter()
            .map(|s| decay_factor(s.thermal.params(), config.delta_s()))
            .collect();
        let supply_stage = SupplyStage::for_tree(&tree);
        let demand_stage = DemandStage::for_tree(&tree);
        let consolidate_stage = ConsolidateStage::for_tree(&tree, servers.len());
        let physics_stage = PhysicsStage::for_tree(&tree, servers.len());
        let pool = ShardPool::new(shard::resolve_threads(config.threads));
        let policies = ControlPolicies::for_config(&config);
        Ok(Willow {
            tree,
            config,
            servers,
            leaf_server,
            power,
            fabric,
            tick,
            last_move: last_moves
                .into_iter()
                .map(|(app, from, t)| (app, (from, t)))
                .collect(),
            last_dropped,
            stats,
            local_cp,
            watchdog,
            accepted_temp,
            decay_dd,
            decay_ds,
            backoff: backoff.into_iter().collect(),
            journal,
            disturb: Disturbances::default(),
            mig_attempts: 0,
            counters: FaultCounters::default(),
            supply_stage,
            demand_stage,
            consolidate_stage,
            physics_stage,
            pool,
            policies,
            planning,
            tel: ControllerTelemetry::default(),
            pending,
            next_command_id,
            paused,
        })
    }

    /// Restart a crashed controller from its last periodic `checkpoint`
    /// and reconcile it against `field` — the live leaf-local state that
    /// kept running open-loop while the controller was down (see
    /// [`Willow::step_open_loop`]).
    ///
    /// The checkpoint supplies the controller's *memory* (config, counters,
    /// ping-pong history, retry backoff, the migration journal); the field
    /// supplies *physical truth*, which always wins where the two disagree:
    ///
    /// * **Placement and server state** — migrations committed between the
    ///   checkpoint and the crash are in the field but not the checkpoint,
    ///   so the field's servers (and their smoother/thermal state) are
    ///   adopted wholesale. Nothing moves during an outage (only the
    ///   controller migrates), so this is exact, not approximate.
    /// * **Budgets, caps, watchdogs, accepted temperatures, clock** — the
    ///   leaves' applied budgets (tightened by open-loop watchdogs) and
    ///   filtered sensor state carry over; the restored controller resumes
    ///   at the field's tick, not the checkpoint's.
    /// * **Demand view** — re-learned: each leaf's `CP` is seeded from its
    ///   fresh `local_cp` and re-aggregated up the tree, replacing the
    ///   checkpoint's stale hierarchy view.
    /// * **Ping-pong / backoff memory** — entries whose window already
    ///   elapsed during the outage are expired rather than replayed.
    /// * **In-flight migrations** — journal entries still open in the
    ///   checkpoint never flipped a placement, so they are aborted
    ///   ([`MigrationJournal::resolve_in_flight`]).
    /// * **In-flight drains** — the pending command queue is controller
    ///   memory and comes from the checkpoint; a server the field reports
    ///   as `Draining` whose drain command is *not* in that queue (it was
    ///   issued after the checkpoint) is demoted back to `Active` — a
    ///   crash mid-drain never permanently fences a healthy server.
    ///   Conversely a checkpointed drain whose server already finished
    ///   fencing simply re-completes (at-least-once outcome reporting).
    ///
    /// # Errors
    /// Whatever [`WillowSnapshot`](crate::snapshot::WillowSnapshot)
    /// restoration reports, plus [`WillowError::SnapshotShape`] when the
    /// checkpoint's topology does not match the field's.
    pub fn recover(
        checkpoint: crate::snapshot::WillowSnapshot,
        field: &Willow,
    ) -> Result<Willow, WillowError> {
        let mut w = Willow::from_parts(checkpoint)?;
        let shape = |field_name: &'static str, found: usize, expected: usize| {
            if found == expected {
                Ok(())
            } else {
                Err(WillowError::SnapshotShape {
                    field: field_name,
                    found,
                    expected,
                })
            }
        };
        shape("recover.tree", w.tree.len(), field.tree.len())?;
        shape("recover.servers", w.servers.len(), field.servers.len())?;
        for (ours, theirs) in w.servers.iter().zip(&field.servers) {
            shape("recover.leaf", ours.node.index(), theirs.node.index())?;
        }

        // Physical truth from the field.
        w.servers.clone_from(&field.servers);
        w.leaf_server.clone_from(&field.leaf_server);
        w.power.clone_from(&field.power);
        w.local_cp.clone_from(&field.local_cp);
        w.watchdog.clone_from(&field.watchdog);
        w.accepted_temp.clone_from(&field.accepted_temp);
        w.tick = field.tick;
        w.last_dropped = field.last_dropped;

        // Re-learn the demand hierarchy from the leaves' fresh local view,
        // and re-sum the caps the leaves computed for themselves open-loop.
        for (si, server) in w.servers.iter().enumerate() {
            let leaf = server.node.index();
            // Only the slot's owner speaks for it: a retired row whose
            // node was recycled must not clobber the live server's demand.
            if w.leaf_server[leaf] != Some(si) {
                continue;
            }
            w.power.cp[leaf] = if server.active {
                w.local_cp[leaf]
            } else {
                Watts::ZERO
            };
        }
        w.power.aggregate_demands(&w.tree);
        w.power.aggregate_caps(&w.tree);

        // Expire memory whose window elapsed during the outage.
        let horizon = w.config.pingpong_window;
        let now = w.tick;
        w.last_move
            .retain(|_, &mut (_, t)| now.saturating_sub(t) < horizon);
        w.backoff.retain(|_, b| b.retry_at > now);
        w.journal.resolve_in_flight();

        // Command plane: the queue is controller memory (restored from the
        // checkpoint above), but correlation ids must never regress below
        // ones the field already handed out.
        w.next_command_id = w.next_command_id.max(field.next_command_id);
        // Resolve in-flight drain fences the same way the journal resolves
        // in-flight migrations: a `Draining` fence whose drain command was
        // issued after the checkpoint (so the restored queue no longer
        // carries it) would otherwise stay half-fenced forever.
        for (si, server) in w.servers.iter_mut().enumerate() {
            let drain_pending = w
                .pending
                .iter()
                .any(|p| matches!(p.command, Command::Drain { server } if server == si));
            if server.fence == FenceState::Draining && !drain_pending {
                server.fence = FenceState::Active;
            }
        }
        Ok(w)
    }

    /// Server index hosting `app`, if any.
    #[must_use]
    pub fn locate_app(&self, app: AppId) -> Option<usize> {
        self.servers.iter().position(|s| s.find_app(app).is_some())
    }

    /// A read-only view of the controller state for policy callbacks.
    pub(super) fn policy_ctx(&self) -> PolicyCtx<'_> {
        PolicyCtx {
            tree: &self.tree,
            power: &self.power,
            servers: &self.servers,
            leaf_server: &self.leaf_server,
            config: &self.config,
        }
    }

    /// Drive one demand period. `app_demand` is indexed by `AppId.0` and
    /// gives each application's raw power demand this period; `supply` is
    /// the data center's total power budget (used on supply ticks).
    ///
    /// Equivalent to [`Willow::step_with`] with no disturbances.
    ///
    /// # Panics
    /// Panics if `app_demand` does not cover every hosted application's id.
    pub fn step(&mut self, app_demand: &[Watts], supply: Watts) -> TickReport {
        self.step_with(app_demand, supply, &Disturbances::default())
    }

    /// Drive one demand period under injected faults (see
    /// [`crate::disturbance`]). With the default (empty) [`Disturbances`]
    /// this is exactly [`Willow::step`] — the fault machinery changes
    /// nothing about fault-free trajectories.
    ///
    /// Allocates a fresh [`TickReport`]; steady-state drivers should prefer
    /// [`Willow::step_into`], which reuses a caller-provided one.
    ///
    /// # Panics
    /// Panics if `app_demand` does not cover every hosted application's id.
    pub fn step_with(
        &mut self,
        app_demand: &[Watts],
        supply: Watts,
        disturb: &Disturbances,
    ) -> TickReport {
        let mut report = TickReport::default();
        self.step_into(app_demand, supply, disturb, &mut report);
        report
    }

    /// [`Willow::step_with`], writing into a caller-provided report instead
    /// of returning a fresh one. `report` is fully overwritten (its buffer
    /// capacity is reused), so one report driven across a run makes the
    /// steady-state no-migration tick free of heap allocation entirely.
    ///
    /// Each pipeline stage borrows its own scratch struct for the duration
    /// of its phase (`std::mem::take`, put back afterwards) so the stage
    /// methods can work alongside `&mut self` field access without
    /// reallocating.
    ///
    /// # Panics
    /// Panics if `app_demand` does not cover every hosted application's id.
    pub fn step_into(
        &mut self,
        app_demand: &[Watts],
        supply: Watts,
        disturb: &Disturbances,
        report: &mut TickReport,
    ) {
        self.disturb.assign_from(disturb);
        self.mig_attempts = 0;
        self.counters = FaultCounters::default();
        let tick = self.tick;
        // Age out closed migration transactions; open entries are kept
        // (and an empty journal makes this free on steady-state ticks).
        self.journal.prune(tick);
        let supply_tick = tick.is_multiple_of(u64::from(self.config.eta1));
        let consolidation_tick = tick.is_multiple_of(u64::from(self.config.eta2));
        report.reset(tick, supply_tick, consolidation_tick);
        self.fabric.reset_epoch();

        // ------------------------------------------------ 1. measurement
        let t0 = self.tel.span_start(SLOT_AGGREGATE, tick);
        self.measure(app_demand);
        self.tel.span_aggregate.record_since(t0);
        // Upward demand reports: one message per tree link.
        report.control_messages += self.tree.len() - 1;
        self.stats.messages += (self.tree.len() - 1) as u64;

        // -------------------------------------------- 1b. command plane
        // Fixed point in the tick: after measurement (commands see fresh
        // demand), before supply (budgets divide over the post-command
        // topology). A single branch when the queue is idle.
        self.process_commands(report);

        // -------------------------------------- 1c. planning observation
        // Root aggregate demand every tick (per-leaf series were fed
        // inside the sharded measure loop); supply only when a value is
        // actually applied, so the supply series' horizon unit stays one
        // supply period. The context is then lent to stages 2–4 —
        // `mem::take` leaves the inert zero-capacity placeholder, which
        // nothing observes until the real context returns.
        let root = self.tree.root();
        self.planning
            .root_demand
            .observe(self.power.cp[root.index()]);
        if supply_tick && !self.paused {
            self.planning.supply.observe(supply);
        }
        let planning = std::mem::take(&mut self.planning);

        // ------------------------------------------- 2. supply adaptation
        if supply_tick && !self.paused {
            let t0 = self.tel.span_start(SLOT_ALLOCATE, tick);
            let mut stage = std::mem::take(&mut self.supply_stage);
            self.supply_adaptation(supply, &mut stage, &planning);
            self.supply_stage = stage;
            self.tel.span_allocate.record_since(t0);
            // Downward budget directives: one message per tree link.
            report.control_messages += self.tree.len() - 1;
            self.stats.messages += (self.tree.len() - 1) as u64;
        }

        // ------------------------------------------- 3. demand adaptation
        if !self.paused {
            let t0 = self.tel.span_start(SLOT_PLAN_MIGRATIONS, tick);
            let mut stage = std::mem::take(&mut self.demand_stage);
            self.demand_adaptation(tick, &mut stage, &mut report.migrations, &planning);
            self.demand_stage = stage;
            self.tel.span_plan_migrations.record_since(t0);
        }

        // --------------------------------------------- 4. consolidation
        if consolidation_tick && !self.paused {
            let t0 = self.tel.span_start(SLOT_CONSOLIDATE, tick);
            let mut stage = std::mem::take(&mut self.consolidate_stage);
            self.consolidate(
                tick,
                &mut stage,
                &mut report.migrations,
                &mut report.slept,
                &planning,
            );
            let wake_need = self.wake_need(&planning);
            if self.config.wake_on_deficit && wake_need.0 > 0.0 {
                self.wake_servers(wake_need, tick, &mut stage.sleeping, &mut report.woken);
            }
            self.consolidate_stage = stage;
            self.tel.span_consolidate.record_since(t0);
        }
        self.planning = planning;

        // ------------------------------------------------- 5. physics
        let t0 = self.tel.span_start(SLOT_THERMAL_UPDATE, tick);
        // Re-aggregate interior demands only if a leaf CP changed since
        // the measurement phase aggregated them: executed migrations and
        // aborts charge costs, sleeping zeroes the leaf. On a clean tick
        // the interior sums are already exactly what recomputation would
        // write, so skipping it is bit-neutral.
        let cp_dirty = !report.migrations.is_empty()
            || self.counters.migration_aborts > 0
            || !report.slept.is_empty();
        if cp_dirty {
            self.power.aggregate_demands(&self.tree);
        }
        self.physics_phase(report);
        self.tel.span_thermal_update.record_since(t0);

        self.tel.migrations.add(report.migrations.len() as u64);
        self.tel
            .migration_aborts
            .add(self.counters.migration_aborts as u64);
        self.tel
            .migration_rejects
            .add(self.counters.migration_rejects as u64);
        self.tel
            .watchdog_trips
            .add(self.counters.watchdog_trips as u64);
        if self.tel.due(SLOT_GAUGES, tick) {
            for (level, gauge) in self.tel.level_deficit.iter().enumerate() {
                let deficit = self
                    .tree
                    .nodes_at_level(level as u8)
                    .iter()
                    .map(|&n| self.power.deficit(n))
                    .fold(Watts::ZERO, |a, b| a + b);
                gauge.set(deficit.0);
            }
            self.tel.fabric.observe(&self.fabric);
        }

        self.publish_counters(report);

        self.tick += 1;
    }

    /// Drive one demand period with the central controller *down*: only
    /// the leaf-local control surface runs. Servers keep measuring and
    /// smoothing their own demand, draw against their last applied budget,
    /// advance thermally, and run the sensor plausibility filter — but no
    /// reports flow up, no budgets flow down, and no migrations or
    /// consolidations happen (only the controller initiates them). On
    /// supply ticks every leaf misses its directive, so the stale-directive
    /// watchdogs count, trip at the configured threshold, and budgets can
    /// only *tighten* (clipped by the locally recomputed thermal cap, and
    /// by the fallback fraction once tripped) — exactly the per-leaf
    /// degraded mode of [`Willow::step_into`] under directive loss, applied
    /// fleet-wide.
    ///
    /// Sensor faults in `disturb` still apply (they are physical); message
    /// and migration faults are moot since no messages are sent.
    ///
    /// # Panics
    /// Panics if `app_demand` does not cover every hosted application's id.
    pub fn step_open_loop(
        &mut self,
        app_demand: &[Watts],
        disturb: &Disturbances,
        report: &mut TickReport,
    ) {
        self.disturb.assign_from(disturb);
        self.mig_attempts = 0;
        self.counters = FaultCounters::default();
        let tick = self.tick;
        let supply_tick = tick.is_multiple_of(u64::from(self.config.eta1));
        let consolidation_tick = tick.is_multiple_of(u64::from(self.config.eta2));
        report.reset(tick, supply_tick, consolidation_tick);
        self.fabric.reset_epoch();

        self.measure_open_loop(app_demand);

        // On supply ticks every leaf's directive is missing. Each leaf
        // refreshes its *own* thermal cap from its accepted temperature
        // (that computation is local) and applies the same tighten-only
        // fallback it uses for an individually lost directive.
        if supply_tick {
            self.open_loop_supply_fallback();
        }

        self.physics_phase(report);
        self.tel
            .watchdog_trips
            .add(self.counters.watchdog_trips as u64);
        self.publish_counters(report);

        self.tick += 1;
    }
}
