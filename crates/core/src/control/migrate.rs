//! Transactional migration machinery shared by the demand and
//! consolidation stages: prepare → transfer → commit/abort through the
//! write-ahead journal (see `crate::txn`), ping-pong suppression
//! (Property 4), and exponential retry backoff for failed attempts.

use super::demand::DeficitItem;
use super::Willow;
use crate::disturbance::MigrationOutcome;
use crate::migration::MigrationRecord;
use crate::txn::TxnId;
use willow_topology::NodeId;
use willow_workload::app::AppId;

/// Exponential retry backoff for an app whose migration failed. Part of
/// the checkpointed state, like [`Watchdog`](super::Watchdog).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Backoff {
    /// Failed attempts so far.
    pub failures: u32,
    /// Earliest tick at which another attempt may be made.
    pub retry_at: u64,
}

impl Willow {
    /// True if placing `app` on `target` now would return it to the host it
    /// left within the ping-pong window `Δ_f`.
    pub(super) fn would_pingpong(&self, app: AppId, target: NodeId, tick: u64) -> bool {
        self.last_move.get(&app).is_some_and(|&(prev_from, t)| {
            target == prev_from && tick.saturating_sub(t) < self.config.pingpong_window
        })
    }

    /// Is `app` still waiting out its retry backoff at `tick`?
    pub(super) fn in_backoff(&self, app: AppId, tick: u64) -> bool {
        self.backoff.get(&app).is_some_and(|b| tick < b.retry_at)
    }

    /// Record a failed migration attempt for `app` and schedule its next
    /// eligible attempt with exponential backoff.
    pub(super) fn register_failure(&mut self, app: AppId, tick: u64) {
        let rb = self.config.robustness;
        let entry = self.backoff.entry(app).or_insert(Backoff {
            failures: 0,
            retry_at: 0,
        });
        entry.failures += 1;
        let exp = (entry.failures - 1).min(rb.retry_cap);
        let delay = rb.retry_base.saturating_mul(1u64 << exp);
        entry.retry_at = tick.saturating_add(delay);
    }

    /// Try to migrate `item` to `target_leaf` as a transaction (see
    /// `crate::txn`), consuming the next pre-rolled outcome. On `Success`
    /// the transaction runs prepare → transfer → commit and the move
    /// happens (a cleared backoff counts as a successful retry); on
    /// `Reject` the transaction aborts straight from `Prepared` — nothing
    /// is charged; on `Abort` it aborts from `Transferred` — the copy work
    /// already happened, so both end nodes pay the temporary cost and the
    /// fabric carried the traffic, but the app stays at the source. Both
    /// failure modes enter the app into retry backoff. Returns whether the
    /// app moved.
    pub(super) fn attempt_migration(
        &mut self,
        item: &DeficitItem,
        target_leaf: NodeId,
        tick: u64,
        records: &mut Vec<MigrationRecord>,
    ) -> bool {
        let attempt = self.mig_attempts;
        self.mig_attempts += 1;
        let txn = self.prepare_migration(item, target_leaf, tick);
        match self.disturb.migration_outcome(attempt) {
            MigrationOutcome::Success => {
                if self.backoff.remove(&item.app).is_some() {
                    self.counters.migration_retries += 1;
                }
                self.transfer_migration(txn);
                let committed = self.commit_migration(txn, records);
                debug_assert!(committed, "a fresh transaction must commit");
                true
            }
            MigrationOutcome::Reject => {
                // Admission refused before any copy work: abort from
                // `Prepared`, charging nothing.
                self.abort_migration(txn);
                self.counters.migration_rejects += 1;
                self.register_failure(item.app, tick);
                false
            }
            MigrationOutcome::Abort => {
                // Dead link / crash mid-copy: the transfer's work was real,
                // the placement flip never happened.
                self.counters.migration_aborts += 1;
                self.transfer_migration(txn);
                self.abort_migration(txn);
                self.register_failure(item.app, tick);
                false
            }
        }
    }

    /// Transaction phase 1 — **prepare**: validate the attempt and open a
    /// journal entry. Nothing is charged; the app keeps running at the
    /// source.
    pub(super) fn prepare_migration(
        &mut self,
        item: &DeficitItem,
        target_leaf: NodeId,
        tick: u64,
    ) -> TxnId {
        let src_leaf = self.servers[item.server].node;
        debug_assert!(
            self.servers[item.server].find_app(item.app).is_some(),
            "preparing a migration for an app not hosted at its source"
        );
        debug_assert!(
            self.leaf_server[target_leaf.index()].is_some(),
            "preparing a migration to a non-server target"
        );
        self.journal.begin(
            item.app,
            src_leaf,
            target_leaf,
            item.demand,
            item.reason,
            tick,
        )
    }

    /// Transaction phase 2 — **transfer**: the copy work. Both end nodes
    /// pay the temporary cost for one period (§IV-E) and the fabric
    /// carries the traffic. This happens whether the transaction later
    /// commits or aborts — aborting cannot refund work already done.
    pub(super) fn transfer_migration(&mut self, txn: TxnId) {
        let e = *self
            .journal
            .entry(txn)
            .expect("transferring a live transaction");
        let src_idx = self.leaf_server[e.from.index()].expect("source is a server leaf");
        let tgt_idx = self.leaf_server[e.to.index()].expect("target is a server leaf");
        let local = self.tree.are_siblings(e.from, e.to);
        let cost = self.config.cost_model.end_node_cost(e.demand, local);
        self.servers[src_idx].pending_cost += cost;
        self.servers[tgt_idx].pending_cost += cost;
        let units = self.config.cost_model.traffic_units(e.demand);
        self.fabric
            .record_migration(&self.tree, e.from, e.to, units);
        self.journal.mark_transferred(txn);
    }

    /// Transaction phase 3 — **commit**: flip the placement at the target
    /// and update every demand view. Idempotent: committing an
    /// already-committed (or aborted) transaction returns `false` and
    /// changes nothing, so duplicated commit messages can never
    /// double-move an app. Returns whether *this* call performed the move.
    pub(super) fn commit_migration(
        &mut self,
        txn: TxnId,
        records: &mut Vec<MigrationRecord>,
    ) -> bool {
        let e = match self.journal.entry(txn) {
            Some(e) => *e,
            None => return false,
        };
        if !self.journal.commit(txn) {
            return false;
        }
        let src_idx = self.leaf_server[e.from.index()].expect("source is a server leaf");
        let tgt_idx = self.leaf_server[e.to.index()].expect("target is a server leaf");
        debug_assert_ne!(src_idx, tgt_idx, "cannot migrate to self");

        let app_pos = self.servers[src_idx]
            .find_app(e.app)
            .expect("committed app still hosted at source");
        let (app, demand) = self.servers[src_idx].take_app(app_pos);
        self.servers[tgt_idx].host_app(app, demand);

        let local = self.tree.are_siblings(e.from, e.to);
        let cost = self.config.cost_model.end_node_cost(demand, local);

        // Keep leaf CPs current so later packing sees updated surpluses.
        self.power.cp[e.from.index()] =
            (self.power.cp[e.from.index()] - demand).non_negative() + cost;
        self.power.cp[e.to.index()] += demand + cost;
        self.local_cp[e.from.index()] =
            (self.local_cp[e.from.index()] - demand).non_negative() + cost;
        self.local_cp[e.to.index()] += demand + cost;

        let hops = self.tree.path_len(e.from, e.to) - 1; // switches on path
                                                         // Ping-pong: the app returns to the host it last left, within Δ_f.
        let pingpong = self.last_move.get(&e.app).is_some_and(|&(prev_from, t)| {
            e.to == prev_from && e.tick.saturating_sub(t) < self.config.pingpong_window
        });
        self.last_move.insert(e.app, (e.from, e.tick));

        self.stats.migrations += 1;
        records.push(MigrationRecord {
            tick: e.tick,
            app: e.app,
            from: e.from,
            to: e.to,
            moved: demand,
            reason: e.reason,
            local,
            hops,
            pingpong,
        });
        true
    }

    /// Explicit **abort**, legal from either open phase: the app stays at
    /// the source. An abort after transfer charges the copy cost into both
    /// ends' demand views (the work was real); an abort from `Prepared`
    /// charges nothing.
    pub(super) fn abort_migration(&mut self, txn: TxnId) {
        let e = *self
            .journal
            .entry(txn)
            .expect("aborting a live transaction");
        if e.phase == crate::txn::TxnPhase::Transferred {
            let local = self.tree.are_siblings(e.from, e.to);
            let cost = self.config.cost_model.end_node_cost(e.demand, local);
            self.power.cp[e.from.index()] += cost;
            self.power.cp[e.to.index()] += cost;
            self.local_cp[e.from.index()] += cost;
            self.local_cp[e.to.index()] += cost;
        }
        self.journal.abort(txn);
    }
}
