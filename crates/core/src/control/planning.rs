//! The horizon-aware planning seam: per-node demand/supply history and
//! forecasts, threaded through every policy decision point.
//!
//! The paper's controller is purely reactive — each stage decides from the
//! current tick's measurements. The ROADMAP's predictive (MPC-style)
//! policy and the broker's zone-demand forecasting both need the same
//! structural ingredient: decision seams that can see *history* and a
//! *forecast*, not just an instantaneous scalar. This module provides it:
//!
//! * [`HistoryRing`] — a fixed-capacity ring of recent observations,
//!   overwritten in place (zero allocations after construction);
//! * [`Forecaster`] — the horizon-`h` prediction interface, with
//!   [`ForecastModel`] adapting the existing `willow-workload` smoothers
//!   ([`ExpSmoother`] forecasts flat, [`HoltSmoother`] extrapolates its
//!   trend);
//! * [`PlanSeries`] — one tracked series: a ring plus a model, fed
//!   together;
//! * [`PlanningContext`] — the controller's full planning state: root
//!   supply, root aggregate demand, and one series per roster server. The
//!   measure stage updates it once per tick; stages 2–4 and the policy
//!   traits receive it as `&PlanningContext`.
//!
//! **Horizon semantics.** Leaf and root-demand series observe once per
//! demand period, so `predict(h)` is `h` demand periods (`h·Δ_D`) ahead.
//! The supply series observes once per *supply* tick (when a supply value
//! is actually applied), so its horizon unit is `η1·Δ_D`. Predictions are
//! `None` until a series has seen its first observation — callers must
//! treat "no forecast" as "fall back to reactive", never as zero.
//!
//! **Determinism and cost.** The context is plain serialized state
//! (captured in `WillowSnapshot`, restored verbatim), updates are
//! per-server-disjoint (safe to fold into the sharded measure loop), and
//! the default policies ignore the context entirely — attaching it changes
//! no reactive trajectory bit and allocates nothing in steady state.

use serde::{Deserialize, Serialize};
use willow_thermal::units::Watts;
use willow_workload::smoothing::{ExpSmoother, HoltSmoother};

/// Observations retained per tracked series. Sixteen demand periods cover
/// four supply periods (`η1 = 4`) and two consolidation periods
/// (`η2 = 7`) of context — enough for any built-in policy's look-behind —
/// while keeping the per-server footprint at 128 bytes.
pub const HISTORY_DEPTH: usize = 16;

/// Level gain of the planning forecasters. Matches the controller's
/// default demand-smoothing `α`; fixed (not configurable) because the
/// planning context must stay identical across configs for the default
/// policies' bit-for-bit neutrality to be testable in one place.
pub const PLANNING_ALPHA: f64 = 0.5;

/// Trend gain of the planning forecasters. Deliberately below the level
/// gain: trends should build over a few periods, not chase single-tick
/// noise into wild extrapolations.
pub const PLANNING_BETA: f64 = 0.3;

/// Headroom factor the predictive supply policy keeps above current root
/// demand when pre-tightening toward a forecast supply dip. Tightening the
/// root budget all the way to the forecast level sheds demand *before* the
/// dip arrives (self-inflicted drops), while tightening exactly to current
/// demand leaves `excess = margin` everywhere and churns deficit items;
/// 10% headroom keeps the pre-dip budget strictly above demand-plus-margin
/// for any realistically loaded root while still evacuating
/// thermally-capped servers a supply period early.
pub const PREDICTIVE_HEADROOM: f64 = 1.1;

/// A fixed-capacity ring of recent power observations. Pushing overwrites
/// the oldest entry once full; the buffer is sized at construction and
/// never reallocates.
///
/// The [`Default`] ring has capacity zero and silently drops pushes — it
/// exists so [`PlanningContext`] can be `std::mem::take`n around the
/// pipeline stages without allocating a real replacement. Every ring that
/// is actually observed comes from [`HistoryRing::new`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HistoryRing {
    /// Backing store, pre-filled at construction.
    buf: Vec<Watts>,
    /// Next write position.
    head: usize,
    /// Valid entries (`≤ buf.len()`).
    len: usize,
}

impl HistoryRing {
    /// A ring holding up to `capacity` observations.
    ///
    /// # Panics
    /// Panics if `capacity == 0` — use [`HistoryRing::default`] for the
    /// deliberate empty placeholder.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "history ring capacity must be positive");
        HistoryRing {
            buf: vec![Watts::ZERO; capacity],
            head: 0,
            len: 0,
        }
    }

    /// Record one observation, overwriting the oldest once full. A
    /// zero-capacity (placeholder) ring drops the observation.
    pub fn push(&mut self, value: Watts) {
        if self.buf.is_empty() {
            return;
        }
        self.buf[self.head] = value;
        self.head = (self.head + 1) % self.buf.len();
        self.len = (self.len + 1).min(self.buf.len());
    }

    /// Observations currently held (saturates at the capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True before the first observation.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum observations the ring can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// The observation `age` pushes ago: `get(0)` is the newest, up to
    /// `get(len() - 1)` for the oldest retained. `None` beyond that.
    #[must_use]
    pub fn get(&self, age: usize) -> Option<Watts> {
        if age >= self.len {
            return None;
        }
        let cap = self.buf.len();
        Some(self.buf[(self.head + cap - 1 - age) % cap])
    }

    /// The most recent observation, if any.
    #[must_use]
    pub fn latest(&self) -> Option<Watts> {
        self.get(0)
    }

    /// Forget every observation (capacity is retained).
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }
}

/// The prediction interface of the planning seam: feed observations in
/// series order, ask for a horizon-`h` forecast. The horizon's time unit
/// is whatever interval the series is observed at (see the module docs).
pub trait Forecaster {
    /// Feed one observation.
    fn observe(&mut self, raw: Watts);
    /// Forecast `h` observation intervals ahead (`h ≥ 1`). `None` until
    /// the model has something to extrapolate from.
    fn predict(&self, h: u32) -> Option<Watts>;
    /// Forget all history.
    fn reset(&mut self);
}

/// A serializable [`Forecaster`] over the `willow-workload` smoothers.
/// The same adapter idiom as `DemandSmoother` in `crate::server`: a
/// closed enum rather than a boxed trait object, so the model state can
/// live inside [`WillowSnapshot`](crate::snapshot::WillowSnapshot) and
/// restore bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ForecastModel {
    /// Plain exponential smoothing: the forecast is flat at the current
    /// smoothed level, for any horizon (no trend model).
    Exponential(ExpSmoother),
    /// Holt level + trend: the forecast extrapolates the trend linearly,
    /// floored at zero watts.
    Holt(HoltSmoother),
}

impl Default for ForecastModel {
    /// The planning default: Holt with the fixed planning gains — the
    /// whole point of the seam is anticipating ramps, which need a trend.
    fn default() -> Self {
        ForecastModel::Holt(HoltSmoother::new(PLANNING_ALPHA, PLANNING_BETA))
    }
}

impl Forecaster for ForecastModel {
    fn observe(&mut self, raw: Watts) {
        match self {
            ForecastModel::Exponential(s) => {
                s.observe(raw);
            }
            ForecastModel::Holt(s) => {
                s.observe(raw);
            }
        }
    }

    fn predict(&self, h: u32) -> Option<Watts> {
        debug_assert!(h >= 1, "a zero horizon is the latest observation");
        match self {
            ForecastModel::Exponential(s) => s.value(),
            ForecastModel::Holt(s) => s.forecast(h),
        }
    }

    fn reset(&mut self) {
        match self {
            ForecastModel::Exponential(s) => s.reset(),
            ForecastModel::Holt(s) => s.reset(),
        }
    }
}

/// One tracked series: raw history (for policies that want to look back)
/// plus a forecast model (for policies that want to look forward), fed
/// together by a single [`PlanSeries::observe`] call.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PlanSeries {
    /// The last [`HISTORY_DEPTH`] observations.
    pub history: HistoryRing,
    /// The forecast model, fed the same observations.
    pub model: ForecastModel,
}

impl PlanSeries {
    /// A standard planning series: [`HISTORY_DEPTH`]-deep ring and the
    /// default Holt model.
    #[must_use]
    pub fn standard() -> Self {
        PlanSeries {
            history: HistoryRing::new(HISTORY_DEPTH),
            model: ForecastModel::default(),
        }
    }

    /// Record one observation into both the ring and the model.
    pub fn observe(&mut self, value: Watts) {
        self.history.push(value);
        self.model.observe(value);
    }

    /// Forecast `h` observation intervals ahead (see [`Forecaster`]).
    #[must_use]
    pub fn predict(&self, h: u32) -> Option<Watts> {
        self.model.predict(h)
    }

    /// The most recent observation, if any.
    #[must_use]
    pub fn latest(&self) -> Option<Watts> {
        self.history.latest()
    }

    /// Forget all history and model state (capacity retained).
    pub fn reset(&mut self) {
        self.history.clear();
        self.model.reset();
    }
}

/// The controller's complete planning state, updated once per tick by the
/// measure stage and handed read-only to stages 2–4 and the policy traits.
///
/// Serialized whole inside `WillowSnapshot` (restore continues forecasts
/// bit-for-bit); `recover` keeps the checkpoint's context — forecaster
/// state is controller *memory*, like the pending-command queue, not
/// field-observable physical truth.
///
/// The [`Default`] context is the empty placeholder `std::mem::take`
/// leaves behind while a pipeline stage borrows the real one; it holds
/// zero-capacity series and no leaves, and is never observed.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PlanningContext {
    /// Root supply, observed once per applied supply tick. Horizon unit:
    /// supply periods (`η1·Δ_D`).
    pub supply: PlanSeries,
    /// Aggregate smoothed demand at the tree root, observed every tick.
    /// Horizon unit: demand periods (`Δ_D`).
    pub root_demand: PlanSeries,
    /// Per-server demand series, indexed by roster (server) order like
    /// `Willow::servers` — including retired slots, which observe zero.
    /// Horizon unit: demand periods (`Δ_D`).
    pub leaves: Vec<PlanSeries>,
}

impl PlanningContext {
    /// A fresh context for a roster of `n` servers, no history yet.
    #[must_use]
    pub fn for_servers(n: usize) -> Self {
        PlanningContext {
            supply: PlanSeries::standard(),
            root_demand: PlanSeries::standard(),
            leaves: (0..n).map(|_| PlanSeries::standard()).collect(),
        }
    }

    /// Grow the per-server series alongside a roster addition (the
    /// live-ops `AddServer` path). The new series starts with no history.
    pub fn push_server(&mut self) {
        self.leaves.push(PlanSeries::standard());
    }

    /// Forecast the root supply `h` *supply periods* ahead.
    #[must_use]
    pub fn predicted_supply(&self, h: u32) -> Option<Watts> {
        self.supply.predict(h)
    }

    /// Forecast the root aggregate demand `h` demand periods ahead.
    #[must_use]
    pub fn predicted_root_demand(&self, h: u32) -> Option<Watts> {
        self.root_demand.predict(h)
    }

    /// Forecast server `si`'s demand `h` demand periods ahead. `None` for
    /// out-of-roster indices or series without observations.
    #[must_use]
    pub fn predicted_leaf_demand(&self, si: usize, h: u32) -> Option<Watts> {
        self.leaves.get(si).and_then(|s| s.predict(h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_fills_then_wraps() {
        let mut r = HistoryRing::new(3);
        assert!(r.is_empty());
        assert_eq!(r.latest(), None);
        r.push(Watts(1.0));
        r.push(Watts(2.0));
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(0), Some(Watts(2.0)));
        assert_eq!(r.get(1), Some(Watts(1.0)));
        assert_eq!(r.get(2), None);
        r.push(Watts(3.0));
        r.push(Watts(4.0)); // overwrites 1.0
        assert_eq!(r.len(), 3);
        assert_eq!(r.capacity(), 3);
        assert_eq!(r.get(0), Some(Watts(4.0)));
        assert_eq!(r.get(1), Some(Watts(3.0)));
        assert_eq!(r.get(2), Some(Watts(2.0)));
        assert_eq!(r.get(3), None, "overwritten entries are gone");
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.capacity(), 3);
    }

    #[test]
    fn placeholder_ring_drops_pushes() {
        let mut r = HistoryRing::default();
        r.push(Watts(5.0));
        assert!(r.is_empty());
        assert_eq!(r.capacity(), 0);
        assert_eq!(r.latest(), None);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_construction_rejected() {
        let _ = HistoryRing::new(0);
    }

    #[test]
    fn exponential_model_forecasts_flat() {
        let mut m = ForecastModel::Exponential(ExpSmoother::new(0.5));
        assert_eq!(m.predict(1), None);
        m.observe(Watts(100.0));
        m.observe(Watts(200.0));
        let level = m.predict(1).unwrap();
        assert_eq!(m.predict(10), Some(level), "no trend: flat at any horizon");
    }

    #[test]
    fn holt_model_extrapolates_ramps() {
        let mut s = PlanSeries::standard();
        for k in 0..40 {
            s.observe(Watts(f64::from(k) * 5.0));
        }
        let last = s.latest().unwrap();
        let one = s.predict(1).unwrap();
        let four = s.predict(4).unwrap();
        assert!(one > last, "upward trend must extrapolate upward");
        assert!(four > one, "longer horizons extend the trend further");
        // The converged Holt trend on a 5 W/step ramp is ~5 W/step.
        assert!((four.0 - one.0 - 15.0).abs() < 1.0, "trend ≈ 5 W/step");
    }

    #[test]
    fn model_reset_forgets() {
        let mut s = PlanSeries::standard();
        s.observe(Watts(50.0));
        s.reset();
        assert!(s.history.is_empty());
        assert_eq!(s.predict(1), None);
    }

    #[test]
    fn context_tracks_roster_growth() {
        let mut ctx = PlanningContext::for_servers(2);
        assert_eq!(ctx.leaves.len(), 2);
        ctx.push_server();
        assert_eq!(ctx.leaves.len(), 3);
        assert_eq!(ctx.predicted_leaf_demand(2, 1), None);
        ctx.leaves[2].observe(Watts(75.0));
        assert_eq!(ctx.predicted_leaf_demand(2, 1), Some(Watts(75.0)));
        assert_eq!(ctx.predicted_leaf_demand(7, 1), None, "out of roster");
    }

    #[test]
    fn context_round_trips_through_json() {
        let mut ctx = PlanningContext::for_servers(3);
        for t in 0..20 {
            ctx.root_demand.observe(Watts(f64::from(t) * 10.0));
            for s in &mut ctx.leaves {
                s.observe(Watts(f64::from(t)));
            }
            if t % 4 == 0 {
                ctx.supply.observe(Watts(1000.0 - f64::from(t)));
            }
        }
        let json = serde_json::to_string(&ctx).expect("serialize");
        let back: PlanningContext = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(ctx, back);
        // The restored context continues forecasting identically.
        assert_eq!(back.predicted_root_demand(3), ctx.predicted_root_demand(3));
        assert_eq!(back.predicted_supply(1), ctx.predicted_supply(1));
    }

    #[test]
    fn default_context_is_an_inert_placeholder() {
        let ctx = PlanningContext::default();
        assert!(ctx.leaves.is_empty());
        assert_eq!(ctx.supply.history.capacity(), 0);
        assert_eq!(ctx.predicted_supply(1), None);
        assert_eq!(ctx.predicted_root_demand(1), None);
    }
}
