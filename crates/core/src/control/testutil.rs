//! Shared fixtures for the control pipeline's test modules.

use super::Willow;
use crate::server::ServerSpec;
use willow_thermal::units::Watts;
use willow_topology::Tree;
use willow_workload::app::{AppId, Application, SIM_APP_CLASSES};

/// Two pods of two servers each; app i on server i with ~`w` watts mean.
pub(super) fn small_setup(apps_per_server: usize) -> (Tree, Vec<ServerSpec>, usize) {
    let tree = Tree::uniform(&[2, 2]);
    let mut next_id = 0u32;
    let specs: Vec<ServerSpec> = tree
        .leaves()
        .map(|leaf| {
            let apps: Vec<Application> = (0..apps_per_server)
                .map(|_| {
                    let a = Application::new(AppId(next_id), 0, &SIM_APP_CLASSES[0]);
                    next_id += 1;
                    a
                })
                .collect();
            ServerSpec::simulation_default(leaf).with_apps(apps)
        })
        .collect();
    (tree, specs, next_id as usize)
}

pub(super) fn demands(n: usize, w: f64) -> Vec<Watts> {
    vec![Watts(w); n]
}

pub(super) fn placement(w: &Willow) -> Vec<Vec<AppId>> {
    w.servers()
        .iter()
        .map(|s| s.apps.iter().map(|a| a.id).collect())
        .collect()
}
