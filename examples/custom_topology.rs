//! Define a custom data-center hierarchy declaratively, run Willow on it,
//! and export the topology as Graphviz DOT.
//!
//! ```text
//! cargo run --release --example custom_topology
//! ```

use willow::core::config::ControllerConfig;
use willow::core::controller::Willow;
use willow::core::convergence::ConvergenceAnalysis;
use willow::core::server::ServerSpec;
use willow::thermal::units::{Seconds, Watts};
use willow::topology::{to_dot, TopologySpec};
use willow::workload::app::{AppId, Application, SIM_APP_CLASSES};

fn main() {
    // A small asymmetric facility: two rows; row 0 has two racks of two
    // servers, row 1 one big rack of four.
    let spec = TopologySpec::branch(
        "facility",
        vec![
            TopologySpec::branch(
                "row0",
                vec![
                    TopologySpec::branch(
                        "rack00",
                        vec![TopologySpec::leaf("s1"), TopologySpec::leaf("s2")],
                    ),
                    TopologySpec::branch(
                        "rack01",
                        vec![TopologySpec::leaf("s3"), TopologySpec::leaf("s4")],
                    ),
                ],
            ),
            TopologySpec::branch(
                "row1",
                vec![TopologySpec::branch(
                    "rack10",
                    vec![
                        TopologySpec::leaf("s5"),
                        TopologySpec::leaf("s6"),
                        TopologySpec::leaf("s7"),
                        TopologySpec::leaf("s8"),
                    ],
                )],
            ),
        ],
    );
    let tree = spec.build().expect("uniform leaf depth");
    println!("Topology: {} nodes, height {}\n", tree.len(), tree.height());
    println!("--- graphviz ---\n{}--- end ---\n", to_dot(&tree));

    // δ-convergence sanity for this shape at 20 ms per hop.
    let analysis = ConvergenceAnalysis::for_tree(&tree, Seconds(0.020));
    println!(
        "δ = {:.0} ms over {} levels; recommended Δ_D ≥ {:.0} ms",
        analysis.delta.0 * 1000.0,
        analysis.levels,
        analysis.recommended_delta_d.0 * 1000.0
    );

    // Run Willow briefly on it.
    let mut id = 0u32;
    let specs: Vec<ServerSpec> = tree
        .leaves()
        .map(|leaf| {
            let class = id as usize % SIM_APP_CLASSES.len();
            let app = Application::new(AppId(id), class, &SIM_APP_CLASSES[class]);
            id += 1;
            ServerSpec::simulation_default(leaf).with_apps(vec![app])
        })
        .collect();
    let mut willow = Willow::new(tree, specs, ControllerConfig::default()).expect("valid");
    let demands: Vec<Watts> = (0..id)
        .map(|i| SIM_APP_CLASSES[i as usize % SIM_APP_CLASSES.len()].mean_power * 0.5)
        .collect();
    let mut migrations = 0;
    for _ in 0..40 {
        let r = willow.step(&demands, Watts(2200.0));
        migrations += r.migrations.len();
    }
    let asleep = willow.servers().iter().filter(|s| !s.active).count();
    println!(
        "\nAfter 40 periods at half load: {migrations} migrations, {asleep}/8 servers consolidated into sleep."
    );
}
