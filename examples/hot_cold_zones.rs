//! Hot/cold-zone experiment (paper §V-B3, Figs. 5–6): 18 servers in the
//! Fig. 3 topology, servers 15–18 in a 40 °C hot zone, utilization sweep.
//!
//! ```text
//! cargo run --release --example hot_cold_zones
//! ```

use willow::sim::experiments::{fig5_fig6, COLD_SERVERS, HOT_SERVERS};
use willow::sim::{SimConfig, Simulation};

fn main() {
    println!("Willow hot/cold-zone sweep (Fig. 3 topology, Ta = 25 °C vs 40 °C)\n");

    let sweep = fig5_fig6(7, 200, 3);
    println!("U (%) | cold power (W) | hot power (W) | cold temp (°C) | hot temp (°C)");
    println!("------+----------------+---------------+----------------+--------------");
    for (p, t) in sweep.power.iter().zip(&sweep.temperature) {
        println!(
            "{:5.0} | {:14.1} | {:13.1} | {:14.1} | {:13.1}",
            p.utilization * 100.0,
            p.cold,
            p.hot,
            t.cold,
            t.hot
        );
    }

    // Zoom into one run at 60 % utilization and show where the workload
    // ended up.
    let mut cfg = SimConfig::paper_hot_cold(7, 0.6);
    cfg.ticks = 200;
    cfg.warmup = 40;
    let mut sim = Simulation::new(cfg).expect("valid config");
    let metrics = sim.run();

    println!("\nAt U = 60 %:");
    println!(
        "  cold-zone mean power {:.1} W, hot-zone {:.1} W",
        metrics.mean_power(COLD_SERVERS),
        metrics.mean_power(HOT_SERVERS)
    );
    println!(
        "  hot-zone sleep fraction {:.0} % vs cold {:.0} % — Willow parks \
         load away from heat",
        100.0 * metrics.sleep_fraction[14..18].iter().sum::<f64>() / 4.0,
        100.0 * metrics.sleep_fraction[..14].iter().sum::<f64>() / 14.0,
    );
    println!(
        "  peak temperature anywhere: {:.1} °C (limit 70 °C)",
        metrics
            .peak_server_temp
            .iter()
            .fold(f64::NEG_INFINITY, |a, &b| a.max(b))
    );
    println!(
        "  {} demand-driven and {} consolidation-driven migrations, {} ping-pongs",
        metrics.demand_migrations, metrics.consolidation_migrations, metrics.pingpongs
    );
}
