//! Workload consolidation on the emulated testbed (paper §V-C5, Fig. 19 +
//! Table III): in an energy-plenty situation the under-utilized host C is
//! emptied and put to sleep, saving ≈27.5 % of cluster power.
//!
//! ```text
//! cargo run --release --example consolidation
//! ```

use willow::testbed::experiments::consolidation_experiment;

fn main() {
    println!("Willow consolidation run (supply ≈ 750 W, threshold ≈ 20 %)\n");
    let run = consolidation_experiment(2011);

    println!("          | initial util (%) | final util (%)");
    println!("----------+------------------+---------------");
    for (i, host) in ["server A", "server B", "server C"].iter().enumerate() {
        println!(
            "{host:9} | {:16.1} | {:14.1}",
            run.initial_util[i], run.final_util[i]
        );
    }
    println!("\npaper Table III:   A 80 -> 90, B 40 -> 73, C 20 -> 0");

    println!(
        "\nHost C spent {:.0} % of the run in deep sleep.",
        run.c_sleep_fraction * 100.0
    );
    println!(
        "Average cluster power: {:.1} W without consolidation, {:.1} W with \
         Willow — {:.1} % savings (paper: ≈27.5 %).",
        run.baseline_power,
        run.willow_power,
        run.savings * 100.0
    );
}
