//! A full Energy-Adaptive-Computing day: a partially solar-powered data
//! center rides through dawn, clouds and dusk. The raw solar+grid supply is
//! buffered by a battery UPS (paper §IV-C) into the effective supply the
//! Willow controller budgets against; the controller migrates and
//! consolidates as the envelope moves.
//!
//! ```text
//! cargo run --release --example renewable_day
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use willow::power::renewable::compose_with_grid;
use willow::power::{Battery, SolarModel};
use willow::sim::{SimConfig, Simulation};
use willow::thermal::units::{Seconds, Watts};

fn main() {
    // Raw supply: 3.3 kW firm grid share + a 6 kW solar plant (the 18
    // simulated servers need ≈8.1 kW at full blast).
    let solar = SolarModel::default_plant(Watts(6000.0));
    let mut rng = StdRng::seed_from_u64(2026);
    let periods = solar.day_length; // one day of 15-minute supply windows
    let raw = compose_with_grid(Watts(3300.0), &solar.generate(&mut rng, periods));

    // Battery UPS: 2 kWh, smoothing the clouds out of the envelope.
    let mut battery = Battery::new(
        2.0 * 3600.0 * 1000.0,
        0.6,
        Watts(2000.0),
        Watts(2500.0),
        0.92,
    );
    let effective = willow::power::storage::buffer_trace(
        &mut battery,
        &raw,
        Watts(5500.0), // expected average draw
        Seconds(900.0),
    );

    // Willow runs at 60 % average utilization through the day.
    let mut cfg = SimConfig::paper_default(2026, 0.6);
    cfg.ticks = periods * cfg.controller.eta1 as usize;
    cfg.warmup = 0;
    cfg.supply = Some(effective.clone());
    let mut sim = Simulation::new(cfg).expect("valid config");

    println!("window | raw (W) | buffered (W) | drawn (W) | shed (W) | migs | asleep");
    println!("-------+---------+--------------+-----------+----------+------+-------");
    let mut migs_day = 0usize;
    for window in 0..periods {
        let mut drawn = 0.0;
        let mut shed = 0.0;
        let mut migs = 0usize;
        let mut asleep = 0usize;
        for _ in 0..4 {
            let (r, _) = sim.step();
            drawn += r.total_power().0 / 4.0;
            shed += r.dropped_demand.0 / 4.0;
            migs += r.migrations.len();
            asleep = r.server_active.iter().filter(|a| !**a).count();
        }
        migs_day += migs;
        if window % 8 == 0 || migs > 0 {
            println!(
                "{window:6} | {:7.0} | {:12.0} | {:9.0} | {:8.1} | {migs:4} | {asleep:6}",
                raw.at(window).0,
                effective.at(window).0,
                drawn,
                shed
            );
        }
    }
    println!(
        "\n{migs_day} migrations over the day; battery ended at {:.0} % charge.",
        battery.state_of_charge() * 100.0
    );
    println!(
        "Night floor {} W forces consolidation; the solar ramp lets servers wake again.",
        raw.min()
    );
}
