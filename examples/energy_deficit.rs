//! Energy-deficient operation on the emulated 3-host testbed (paper §V-C4,
//! Figs. 15–18): supply plunges trigger migrations away from loaded hosts,
//! and the decisions stay stable while the supply remains low.
//!
//! ```text
//! cargo run --release --example energy_deficit
//! ```

use willow::testbed::experiments::{deficit_experiment, PLUNGE_UNITS};

fn main() {
    println!("Willow on the emulated testbed: 3 hosts, 2-level control plane\n");
    let run = deficit_experiment(2011);

    println!("unit | supply (W) | migrations | avg temp (°C)");
    println!("-----+------------+------------+--------------");
    for (unit, ((supply, migs), temp)) in run
        .supply
        .iter()
        .zip(&run.migrations)
        .zip(&run.avg_temp)
        .enumerate()
    {
        let marker = if PLUNGE_UNITS.contains(&unit) {
            " <- plunge"
        } else {
            ""
        };
        println!("{unit:4} | {supply:10.1} | {migs:10} | {temp:13.1}{marker}");
    }

    let plunge_migs: usize = PLUNGE_UNITS.iter().map(|&u| run.migrations[u]).sum();
    let total: usize = run.migrations.iter().sum();
    println!(
        "\n{plunge_migs}/{total} migrations happened at plunge units; \
         {} ping-pongs; peak temperature {:.1} °C (limit 70 °C).",
        run.pingpongs, run.peak_temp
    );
    println!(
        "Total demand shed over the run: {:.1} W·ticks — Willow covers the \
         deficiency by migration, not by dropping load.",
        run.dropped
    );
}
