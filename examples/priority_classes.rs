//! QoS priority classes under severe energy deficiency (paper §I and §VI):
//! when migration cannot cover the shortfall, low-priority work is degraded
//! first and high-priority work last.
//!
//! ```text
//! cargo run --release --example priority_classes
//! ```

use willow::core::config::{AllocationPolicy, ControllerConfig};
use willow::core::controller::Willow;
use willow::core::server::ServerSpec;
use willow::thermal::units::Watts;
use willow::topology::Tree;
use willow::workload::app::{AppId, Application, Priority, SIM_APP_CLASSES};

fn main() {
    // Six servers, each hosting one app of every priority class.
    let tree = Tree::uniform(&[2, 3]);
    let mut id = 0u32;
    let specs: Vec<ServerSpec> = tree
        .leaves()
        .map(|leaf| {
            let apps: Vec<Application> = Priority::ALL
                .into_iter()
                .map(|priority| {
                    let a =
                        Application::new(AppId(id), 1, &SIM_APP_CLASSES[1]).with_priority(priority);
                    id += 1;
                    a
                })
                .collect();
            ServerSpec::simulation_default(leaf).with_apps(apps)
        })
        .collect();

    let mut cfg = ControllerConfig::default();
    cfg.allocation = AllocationPolicy::EqualShare;
    cfg.consolidation_threshold = 0.0;
    cfg.wake_on_deficit = false;
    let mut willow = Willow::new(tree, specs, cfg).expect("valid setup");

    // Every app offers 40 W; total demand 6×3×40 = 720 W.
    let demands = vec![Watts(40.0); id as usize];

    println!("supply (W) | shed Low (W) | shed Normal (W) | shed High (W)");
    println!("-----------+--------------+-----------------+--------------");
    for supply in [900.0, 700.0, 550.0, 400.0, 250.0] {
        // Settle several periods at this supply and report the last one.
        let mut last = None;
        for _ in 0..8 {
            last = Some(willow.step(&demands, Watts(supply)));
        }
        let r = last.unwrap();
        println!(
            "{supply:10.0} | {:12.1} | {:15.1} | {:13.1}",
            r.shed_by_priority[Priority::Low.index()].0,
            r.shed_by_priority[Priority::Normal.index()].0,
            r.shed_by_priority[Priority::High.index()].0,
        );
    }
    println!(
        "\nAs the envelope tightens, Low absorbs first, then Normal; High-priority \
         demand is shed only when nothing else remains."
    );
}
