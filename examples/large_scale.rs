//! Scale check: Willow on a 512-server, 4-level facility. The paper's
//! §V-A2 argument says the distributed decomposition keeps decision cost
//! per period near-linear in servers with O(log n) depth; this example
//! measures wall-clock per control period at three fleet sizes.
//!
//! ```text
//! cargo run --release --example large_scale
//! ```

use std::time::Instant;
use willow::prelude::*;

/// Scrambled class assignment so server mixes differ (consecutive ids on a
/// server must not form one-of-each-class sets, or no skew ever develops).
fn class_of(id: u32) -> usize {
    (id.wrapping_mul(2_654_435_761) >> 13) as usize % SIM_APP_CLASSES.len()
}

fn build(branching: &[usize], hot_fraction: f64) -> (Willow, usize) {
    let tree = Tree::uniform(branching);
    let n_servers = tree.leaves().count();
    let hot_from = ((1.0 - hot_fraction) * n_servers as f64) as usize;
    let mut id = 0u32;
    let specs: Vec<ServerSpec> = tree
        .leaves()
        .enumerate()
        .map(|(i, leaf)| {
            let apps: Vec<Application> = (0..4)
                .map(|_| {
                    let class = class_of(id);
                    let a = Application::new(AppId(id), class, &SIM_APP_CLASSES[class]);
                    id += 1;
                    a
                })
                .collect();
            let mut spec = ServerSpec::simulation_default(leaf).with_apps(apps);
            if i >= hot_from {
                spec = spec.with_ambient(Celsius(40.0));
            }
            spec
        })
        .collect();
    (
        Willow::new(tree, specs, ControllerConfig::default()).expect("valid"),
        id as usize,
    )
}

fn main() {
    println!("fleet  | levels | periods/s | migrations | pingpongs | peak °C");
    println!("-------+--------+-----------+------------+-----------+--------");
    for (label, branching) in [
        ("18", &[2usize, 3, 3][..]),
        ("128", &[2, 4, 4, 4][..]),
        ("512", &[2, 4, 8, 8][..]),
    ] {
        let (mut willow, n_apps) = build(branching, 0.25);
        let n = willow.servers().len() as f64;
        let supply = Watts(n * 450.0 * 0.92);
        // Uneven, slowly shifting demand.
        let periods = 200u64;
        let mut migrations = 0usize;
        let mut pingpongs = 0usize;
        let mut peak: f64 = 0.0;
        let start = Instant::now();
        for t in 0..periods {
            let demands: Vec<Watts> = (0..n_apps)
                .map(|i| {
                    let class = class_of(i as u32);
                    let phase = ((i as u64 + t / 10) % 4) as f64 / 4.0;
                    SIM_APP_CLASSES[class].mean_power * (0.25 + 0.75 * phase)
                })
                .collect();
            let r = willow.step(&demands, supply);
            migrations += r.migrations.len();
            pingpongs += r.pingpongs();
            peak = peak.max(r.server_temp.iter().map(|c| c.0).fold(f64::MIN, f64::max));
        }
        let elapsed = start.elapsed().as_secs_f64();
        println!(
            "{label:>6} | {:>6} | {:>9.0} | {migrations:>10} | {pingpongs:>9} | {peak:>6.1}",
            willow.tree().height(),
            periods as f64 / elapsed,
        );
        assert!(peak <= 70.0 + 1e-6, "thermal safety must hold at scale");
        assert_eq!(pingpongs, 0, "stability must hold at scale");
    }
    println!("\nControl periods are sub-millisecond even at 512 servers —");
    println!("comfortably inside the paper's 500 ms Δ_D safety margin.");
}
