//! Quickstart: build a small data center, run Willow for 60 control
//! periods under a supply dip, and print what the controller did.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use willow::core::config::{AllocationPolicy, ControllerConfig};
use willow::core::controller::Willow;
use willow::core::migration::MigrationReason;
use willow::core::server::ServerSpec;
use willow::thermal::units::Watts;
use willow::topology::Tree;
use willow::workload::app::{AppId, Application, SIM_APP_CLASSES};

fn main() {
    // A two-pod data center: root → 2 PMUs → 3 servers each.
    let tree = Tree::uniform(&[2, 3]);

    // Two applications per server, drawn round-robin from the paper's
    // {1, 2, 5, 9}-relative-power classes.
    let mut next_id = 0u32;
    let specs: Vec<ServerSpec> = tree
        .leaves()
        .map(|leaf| {
            let apps: Vec<Application> = (0..2)
                .map(|_| {
                    let class = (next_id as usize) % SIM_APP_CLASSES.len();
                    let app = Application::new(AppId(next_id), class, &SIM_APP_CLASSES[class]);
                    next_id += 1;
                    app
                })
                .collect();
            ServerSpec::simulation_default(leaf).with_apps(apps)
        })
        .collect();

    let mut config = ControllerConfig::default();
    config.allocation = AllocationPolicy::EqualShare;
    let mut willow = Willow::new(tree, specs, config).expect("valid setup");

    // Constant demand: every app offers 40 % of its mean power.
    let demands: Vec<Watts> = (0..next_id)
        .map(|id| {
            let class = (id as usize) % SIM_APP_CLASSES.len();
            SIM_APP_CLASSES[class].mean_power * 0.4
        })
        .collect();

    println!("tick | supply  | drawn   | migrations (reason)            | dropped");
    println!("-----+---------+---------+--------------------------------+--------");
    for tick in 0..60u64 {
        // Supply dips sharply between ticks 24 and 40.
        let supply = if (24..40).contains(&tick) {
            Watts(900.0)
        } else {
            Watts(1800.0)
        };
        let report = willow.step(&demands, supply);
        if !report.migrations.is_empty() || tick % 12 == 0 {
            let migs: Vec<String> = report
                .migrations
                .iter()
                .map(|m| {
                    let reason = match m.reason {
                        MigrationReason::Demand => "demand",
                        MigrationReason::Consolidation => "consol",
                        MigrationReason::Drain => "drain",
                    };
                    format!("{}:{}->{} ({reason})", m.app, m.from, m.to)
                })
                .collect();
            println!(
                "{tick:4} | {:7.1} | {:7.1} | {:<30} | {:.1}",
                supply.0,
                report.total_power().0,
                migs.join(", "),
                report.dropped_demand.0
            );
        }
        assert_eq!(report.pingpongs(), 0, "Willow must not ping-pong");
    }

    let active = willow.servers().iter().filter(|s| s.active).count();
    println!("\n{active}/6 servers active at the end (idle ones were consolidated away).");
}
