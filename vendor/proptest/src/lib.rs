//! Offline, API-compatible subset of the `proptest` crate.
//!
//! Implements the slice of proptest this workspace uses: the `proptest!`
//! and `prop_compose!` macros, `Strategy` with `prop_map`, range / tuple /
//! `Just` / union strategies, `prop::collection::vec`,
//! `prop::array::uniform3`, `prop::option::of`, and the `prop_assert*` /
//! `prop_assume!` assertion macros.
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed derived from the test name (reproducible across
//! runs), there is no shrinking, and regression files are ignored. A
//! failing case panics with the formatted assertion message.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

// ------------------------------------------------------------------ runner

/// Per-test configuration (subset of proptest's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed — the property is violated.
    Fail(String),
    /// The case was rejected by `prop_assume!` — skip it.
    Reject(String),
}

impl TestCaseError {
    /// Assertion failure.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Assumption rejection.
    #[must_use]
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result type used by generated property bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic generator driving strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor; `proptest!` derives the seed from the test name
    /// so every property gets an independent, stable stream.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5851_F42D_4C95_7F2D,
        }
    }

    /// Seed from a test-name string (FNV-1a).
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::new(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` below `bound` (`bound == 0` means the full range).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return self.next_u64();
        }
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }
}

// ---------------------------------------------------------------- strategy

/// A recipe for generating values of `Self::Value`.
///
/// Object-safe: `Box<dyn Strategy<Value = T>>` is itself a strategy, which
/// is how `prop_oneof!` erases its arms.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among type-erased strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Build from at least one option.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Box a strategy for use in a [`Union`] (used by `prop_oneof!`).
pub fn boxed_strategy<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

// Ranges as strategies -------------------------------------------------

/// Scalars samplable from range strategies.
pub trait RangeSample: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_range_sample_int {
    ($($t:ty => $unsigned:ty),*) => {$(
        impl RangeSample for $t {
            fn sample_half_open(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty strategy range");
                let span = (hi as $unsigned).wrapping_sub(lo as $unsigned) as u64;
                lo.wrapping_add(rng.below(span) as $t)
            }
            fn sample_inclusive(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as $unsigned).wrapping_sub(lo as $unsigned) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_range_sample_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! impl_range_sample_float {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample_half_open(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty strategy range");
                let v = lo + (hi - lo) * rng.unit_f64() as $t;
                if v >= hi { lo } else { v }
            }
            fn sample_inclusive(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty strategy range");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_range_sample_float!(f32, f64);

impl<T: RangeSample> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: RangeSample> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

// Tuples of strategies --------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9)
}

// `prop::` namespace ----------------------------------------------------

/// The `prop::` namespace re-exported by the prelude.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Lengths acceptable to [`vec`]: a fixed size or a range.
        pub trait IntoSizeRange {
            /// Lower (inclusive) and upper (exclusive) length bounds.
            fn bounds(&self) -> (usize, usize);
        }

        impl IntoSizeRange for usize {
            fn bounds(&self) -> (usize, usize) {
                (*self, *self + 1)
            }
        }

        impl IntoSizeRange for Range<usize> {
            fn bounds(&self) -> (usize, usize) {
                (self.start, self.end)
            }
        }

        /// Strategy for `Vec<T>` with lengths drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
            let (lo, hi) = size.bounds();
            assert!(lo < hi, "empty size range for prop::collection::vec");
            VecStrategy { element, lo, hi }
        }

        /// Strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            lo: usize,
            hi: usize,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.hi - self.lo) as u64;
                let len = self.lo + rng.below(span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Fixed-size array strategies.
    pub mod array {
        use crate::{Strategy, TestRng};

        /// Strategy for `[T; N]` from one element strategy.
        pub struct UniformArray<S, const N: usize> {
            element: S,
        }

        impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N>
        where
            S::Value: std::fmt::Debug,
        {
            type Value = [S::Value; N];
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let items: Vec<S::Value> = (0..N).map(|_| self.element.generate(rng)).collect();
                items
                    .try_into()
                    .expect("generated exactly N items immediately above")
            }
        }

        /// `[T; 3]` strategy.
        pub fn uniform3<S: Strategy>(element: S) -> UniformArray<S, 3> {
            UniformArray { element }
        }

        /// `[T; 4]` strategy.
        pub fn uniform4<S: Strategy>(element: S) -> UniformArray<S, 4> {
            UniformArray { element }
        }
    }

    /// `Option<T>` strategies.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// Strategy generating `None` about a quarter of the time.
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }

        /// `Option` wrapper around any strategy.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRng};
}

// ------------------------------------------------------------------ macros

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    // Internal: fully parsed form.
    (@impl $config:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                let mut __rejected: u32 = 0;
                let mut __case: u32 = 0;
                while __case < __config.cases {
                    let __outcome: $crate::TestCaseResult = (|| {
                        $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => { __case += 1; }
                        ::std::result::Result::Err($crate::TestCaseError::Reject(__why)) => {
                            __rejected += 1;
                            assert!(
                                __rejected < __config.cases * 16,
                                "too many prop_assume! rejections ({__why})"
                            );
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                            panic!("proptest case {__case} failed: {__msg}");
                        }
                    }
                }
            }
        )*
    };
    // With a config header.
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $config; $($rest)*);
    };
    // Without.
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Defines a named strategy-returning function:
/// `fn name()(pat in strategy, ...) -> T { body }`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident()($($pat:pat in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name() -> impl $crate::Strategy<Value = $ret> {
            $crate::Strategy::prop_map(($($strat,)+), move |($($pat,)+)| $body)
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::boxed_strategy($strat)),+])
    };
}

/// Property assertion: fails the current case with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __left, __right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = $left;
        let __right = $right;
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                __left,
                __right,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = $left;
        let __right = $right;
        if __left == __right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                __left, __right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = $left;
        let __right = $right;
        if __left == __right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                __left,
                __right,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Reject the current case when `cond` is false; the runner generates a
/// replacement case instead of failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -2.0f64..2.0, z in 1u64..=5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((1..=5).contains(&z));
        }

        #[test]
        fn tuples_and_vecs(pair in (0u32..4, 0.0f64..1.0), xs in prop::collection::vec(0i32..10, 2..6)) {
            prop_assert!(pair.0 < 4);
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&v| (0..10).contains(&v)));
        }

        #[test]
        fn assume_skips_cases(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    prop_compose! {
        fn point()(x in 0.0f64..1.0, y in 0.0f64..1.0) -> (f64, f64) {
            (x, y)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn composed_strategies_work(p in point(), which in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(p.0 >= 0.0 && p.0 < 1.0);
            prop_assert!(which == 1 || which == 2);
        }

        #[test]
        fn arrays_and_options(
            a in prop::array::uniform3(0usize..7),
            o in prop::option::of(0usize..3),
        ) {
            prop_assert!(a.iter().all(|&v| v < 7));
            if let Some(v) = o { prop_assert!(v < 3); }
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
