//! Offline, API-compatible subset of the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` is provided, backed by
//! `std::thread::scope` (stable since Rust 1.63). The API mirrors
//! crossbeam's: the closure receives a scope handle whose `spawn` passes
//! the scope into the worker closure, and `scope` returns a `Result` that
//! is `Err` when any worker panicked.

#![forbid(unsafe_code)]

/// Scoped-thread API compatible with `crossbeam::thread`.
pub mod thread {
    /// Handle passed to the [`scope`] closure, used to spawn workers.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped worker thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the worker and return its result, or `Err` with the
        /// panic payload if it panicked.
        ///
        /// # Errors
        /// Returns the worker's panic payload.
        pub fn join(self) -> Result<T, Box<dyn std::any::Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a worker; the closure receives the scope handle (so it can
        /// itself spawn), matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = Scope { inner: self.inner };
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Run `f` with a scope in which spawned threads may borrow from the
    /// enclosing stack frame; joins all workers before returning.
    ///
    /// # Errors
    /// Returns `Err` with the first panic payload if any *detached* worker
    /// panicked (workers whose handles were joined explicitly report their
    /// panics through `join` instead, as crossbeam does). `std::thread::scope`
    /// itself propagates such panics, so this wrapper catches them to keep
    /// crossbeam's `Result` contract.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let mut results = vec![0u64; data.len()];
        crate::thread::scope(|s| {
            for (slot, &x) in results.iter_mut().zip(&data) {
                s.spawn(move |_| {
                    *slot = x * 10;
                });
            }
        })
        .expect("no worker panicked");
        assert_eq!(results, vec![10, 20, 30, 40]);
    }

    #[test]
    fn panics_surface_as_err() {
        let r = crate::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
