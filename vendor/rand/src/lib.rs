//! Offline, API-compatible subset of the `rand` crate.
//!
//! This workspace builds in environments without access to crates.io, so
//! the handful of `rand` APIs the Willow crates actually use are provided
//! here: [`Rng`] (`gen`, `gen_range`, `gen_bool`, `fill`), [`SeedableRng`]
//! (`seed_from_u64`, `from_seed`), and [`rngs::StdRng`].
//!
//! `StdRng` is a xoshiro256++ generator — deterministic, fast, and of
//! ample statistical quality for simulation workloads. It intentionally
//! does *not* match upstream `StdRng`'s stream (upstream explicitly
//! documents its stream as non-portable across versions), but it is stable
//! within this workspace, which is what the seeded experiments rely on.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// A source of randomness: the core trait, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a range (subset of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty, $unsigned:ty);* $(;)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as $unsigned as u64;
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as $unsigned as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int! {
    u8 => u8, u8;
    u16 => u16, u16;
    u32 => u32, u32;
    u64 => u64, u64;
    usize => usize, usize;
    i8 => i8, u8;
    i16 => i16, u16;
    i32 => i32, u32;
    i64 => i64, u64;
    isize => isize, usize;
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let u = unit_f64(rng) as $t;
                let v = lo + (hi - lo) * u;
                // Guard against rounding up to the excluded endpoint.
                if v >= hi { lo.max(<$t>::from_bits(hi.to_bits() - 1)) } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let u = unit_f64(rng) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Uniform `u64` in `[0, bound)` via Lemire-style rejection (unbiased).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    if bound == 0 {
        return rng.next_u64();
    }
    // Rejection zone keeps the modulo unbiased.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Values producible by [`Rng::gen`] (subset of the `Standard` distribution).
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u32() >> 8) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of an inferred type (`rng.gen::<f64>()` ∈ [0, 1)).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a range (`rng.gen_range(0..10)`,
    /// `rng.gen_range(-1.0..=1.0)`).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        unit_f64(self) < p
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` seed (SplitMix64-expanded, as upstream does).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain).
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(1.0..5.0);
            assert!((1.0..5.0).contains(&x));
            let n: usize = rng.gen_range(0..7);
            assert!(n < 7);
            let i: i64 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&i));
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn next_u32_uses_high_bits() {
        let mut rng = StdRng::seed_from_u64(1);
        // Smoke: values vary.
        let a = rng.next_u32();
        let b = rng.next_u32();
        assert_ne!(a, b);
    }
}
