//! Derive macros for the vendored `serde` stub.
//!
//! Generates impls of the stub's value-tree traits
//! (`serde::Serialize::to_value` / `serde::Deserialize::from_value`)
//! without depending on `syn`/`quote`: the item is parsed directly from
//! the `proc_macro` token stream and the generated impl is assembled as
//! source text and re-parsed.
//!
//! Supported shapes: named-field structs, newtype/tuple structs, enums
//! with unit / newtype / struct variants. Supported attributes (the ones
//! this workspace uses): `#[serde(default)]`, `#[serde(flatten)]`,
//! `#[serde(transparent)]`, `#[serde(tag = "...")]`,
//! `#[serde(rename_all = "snake_case")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the stub `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit(gen_serialize(&item))
}

/// Derives the stub `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit(gen_deserialize(&item))
}

fn emit(code: String) -> TokenStream {
    code.parse()
        .unwrap_or_else(|e| panic!("serde_derive stub generated invalid Rust: {e}\n{code}"))
}

// ------------------------------------------------------------------- model

#[derive(Debug, Clone)]
struct Field {
    name: String,
    default: bool,
    flatten: bool,
}

#[derive(Debug, Clone)]
enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    shape: Shape,
    tag: Option<String>,
    rename_all: Option<String>,
}

// ------------------------------------------------------------------ parser

/// `(name, value)` pairs from `#[serde(...)]`: `default` → `("default",
/// None)`, `tag = "kind"` → `("tag", Some("kind"))`.
type Attrs = Vec<(String, Option<String>)>;

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut container_attrs: Attrs = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                collect_serde_attrs(&tokens, &mut i, &mut container_attrs);
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                return parse_struct(&tokens, i + 1, container_attrs);
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                return parse_enum(&tokens, i + 1, container_attrs);
            }
            _ => i += 1,
        }
    }
    panic!("serde_derive stub: no struct or enum found in derive input");
}

/// Advance past a `#[...]` attribute at `tokens[*i]`, appending any
/// `serde(...)` arguments to `out`.
fn collect_serde_attrs(tokens: &[TokenTree], i: &mut usize, out: &mut Attrs) {
    *i += 1; // past '#'
    let TokenTree::Group(g) = &tokens[*i] else {
        panic!("serde_derive stub: `#` not followed by a bracket group");
    };
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    if let Some(TokenTree::Ident(id)) = inner.first() {
        if id.to_string() == "serde" {
            if let Some(TokenTree::Group(args)) = inner.get(1) {
                out.extend(parse_attr_args(args.stream()));
            }
        }
    }
    *i += 1; // past the bracket group
}

fn parse_attr_args(stream: TokenStream) -> Attrs {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!("serde_derive stub: unsupported serde attribute syntax");
        };
        let name = name.to_string();
        i += 1;
        let mut value = None;
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            let TokenTree::Literal(lit) = &tokens[i] else {
                panic!("serde_derive stub: expected string literal in #[serde({name} = ...)]");
            };
            let text = lit.to_string();
            value = Some(text.trim_matches('"').to_string());
            i += 1;
        }
        out.push((name, value));
        // Skip a separating comma.
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    out
}

fn parse_struct(tokens: &[TokenTree], mut i: usize, container: Attrs) -> Item {
    let TokenTree::Ident(name) = &tokens[i] else {
        panic!("serde_derive stub: expected struct name");
    };
    let name = name.to_string();
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic type `{name}` not supported");
    }
    let shape = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(count_tuple_fields(g.stream()))
        }
        other => panic!("serde_derive stub: unsupported struct body for `{name}`: {other:?}"),
    };
    finish_item(name, shape, container)
}

fn parse_enum(tokens: &[TokenTree], mut i: usize, container: Attrs) -> Item {
    let TokenTree::Ident(name) = &tokens[i] else {
        panic!("serde_derive stub: expected enum name");
    };
    let name = name.to_string();
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic type `{name}` not supported");
    }
    let Some(TokenTree::Group(g)) = tokens.get(i) else {
        panic!("serde_derive stub: expected enum body for `{name}`");
    };
    let body: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut j = 0;
    while j < body.len() {
        match &body[j] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let mut ignored = Vec::new();
                collect_serde_attrs(&body, &mut j, &mut ignored);
            }
            TokenTree::Punct(p) if p.as_char() == ',' => j += 1,
            TokenTree::Ident(vname) => {
                let vname = vname.to_string();
                j += 1;
                let kind = match body.get(j) {
                    Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Brace => {
                        j += 1;
                        VariantKind::Struct(parse_named_fields(vg.stream()))
                    }
                    Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Parenthesis => {
                        j += 1;
                        let arity = count_tuple_fields(vg.stream());
                        assert!(
                            arity == 1,
                            "serde_derive stub: only newtype tuple variants supported \
                             ({name}::{vname} has {arity} fields)"
                        );
                        VariantKind::Newtype
                    }
                    _ => VariantKind::Unit,
                };
                variants.push(Variant { name: vname, kind });
            }
            other => panic!("serde_derive stub: unexpected token in enum `{name}`: {other:?}"),
        }
    }
    finish_item(name, Shape::Enum(variants), container)
}

fn finish_item(name: String, shape: Shape, container: Attrs) -> Item {
    let mut tag = None;
    let mut rename_all = None;
    for (key, value) in container {
        match key.as_str() {
            "tag" => tag = value,
            "rename_all" => rename_all = value,
            // `transparent` is a no-op: newtype structs already serialize
            // as their inner value. `deny_unknown_fields` etc. are ignored.
            _ => {}
        }
    }
    Item {
        name,
        shape,
        tag,
        rename_all,
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut attrs: Attrs = Vec::new();
        // Attributes and visibility before the field name.
        loop {
            match &tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    collect_serde_attrs(&tokens, &mut i, &mut attrs);
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        i += 1;
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(fname)) = tokens.get(i) else {
            break; // trailing comma
        };
        let name = fname.to_string();
        i += 1;
        assert!(
            matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "serde_derive stub: expected `:` after field `{name}`"
        );
        i += 1;
        // Skip the type: everything until a comma outside angle brackets.
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // past the comma (or off the end)
        fields.push(Field {
            name,
            default: attrs.iter().any(|(k, _)| k == "default"),
            flatten: attrs.iter().any(|(k, _)| k == "flatten"),
        });
    }
    fields
}

/// Count comma-separated fields of a tuple struct/variant body, ignoring
/// commas nested in groups or angle brackets.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_token_since_comma = false;
    for tok in &tokens {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                if saw_token_since_comma {
                    count += 1;
                }
                saw_token_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_token_since_comma = true;
    }
    if !saw_token_since_comma {
        count -= 1; // trailing comma
    }
    count
}

// ----------------------------------------------------------------- casing

fn apply_rename(name: &str, rename_all: Option<&str>) -> String {
    match rename_all {
        Some("snake_case") => {
            let mut out = String::new();
            for (i, ch) in name.chars().enumerate() {
                if ch.is_ascii_uppercase() {
                    if i > 0 {
                        out.push('_');
                    }
                    out.push(ch.to_ascii_lowercase());
                } else {
                    out.push(ch);
                }
            }
            out
        }
        Some("lowercase") => name.to_ascii_lowercase(),
        Some("UPPERCASE") => name.to_ascii_uppercase(),
        Some(other) => panic!("serde_derive stub: rename_all = \"{other}\" not supported"),
        None => name.to_string(),
    }
}

// ---------------------------------------------------------------- codegen

/// Push `__fields.push(...)` / flatten-merge statements serializing `expr`
/// (an expression yielding `&FieldType`) under `field`'s key.
fn ser_field_stmt(out: &mut String, field: &Field, expr: &str) {
    if field.flatten {
        out.push_str(&format!(
            "match ::serde::Serialize::to_value({expr}) {{\n\
             ::serde::Value::Object(__inner) => __fields.extend(__inner),\n\
             __other => __fields.push((\"{name}\".to_string(), __other)),\n\
             }}\n",
            name = field.name
        ));
    } else {
        out.push_str(&format!(
            "__fields.push((\"{name}\".to_string(), ::serde::Serialize::to_value({expr})));\n",
            name = field.name
        ));
    }
}

/// Expression deserializing `field` out of the object expression `src`
/// (an expression of type `&::serde::Value`), for use in struct literals.
fn de_field_expr(field: &Field, src: &str, ty_name: &str) -> String {
    if field.flatten {
        return format!("::serde::Deserialize::from_value({src})?");
    }
    let missing = if field.default {
        "::core::default::Default::default()".to_string()
    } else {
        // `Option` fields parse Null to None; everything else reports the
        // missing field.
        format!(
            "::serde::Deserialize::from_value(&::serde::Value::Null)\
             .map_err(|_| ::serde::DeError::missing_field(\"{name}\", \"{ty_name}\"))?",
            name = field.name
        )
    };
    format!(
        "match {src}.get(\"{name}\") {{\n\
         ::std::option::Option::Some(__v) => ::serde::Deserialize::from_value(__v)?,\n\
         ::std::option::Option::None => {missing},\n\
         }}",
        name = field.name
    )
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let mut body = String::new();
    match &item.shape {
        Shape::Named(fields) => {
            body.push_str(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n",
            );
            for f in fields {
                ser_field_stmt(&mut body, f, &format!("&self.{}", f.name));
            }
            body.push_str("::serde::Value::Object(__fields)\n");
        }
        Shape::Tuple(1) => {
            body.push_str("::serde::Serialize::to_value(&self.0)\n");
        }
        Shape::Tuple(n) => {
            body.push_str("::serde::Value::Array(vec![\n");
            for i in 0..*n {
                body.push_str(&format!("::serde::Serialize::to_value(&self.{i}),\n"));
            }
            body.push_str("])\n");
        }
        Shape::Enum(variants) => {
            body.push_str("match self {\n");
            for v in variants {
                let wire = apply_rename(&v.name, item.rename_all.as_deref());
                let vname = &v.name;
                match (&v.kind, &item.tag) {
                    (VariantKind::Unit, None) => {
                        body.push_str(&format!(
                            "{name}::{vname} => ::serde::Value::Str(\"{wire}\".to_string()),\n"
                        ));
                    }
                    (VariantKind::Unit, Some(tag)) => {
                        body.push_str(&format!(
                            "{name}::{vname} => ::serde::Value::Object(vec![(\"{tag}\".to_string(), \
                             ::serde::Value::Str(\"{wire}\".to_string()))]),\n"
                        ));
                    }
                    (VariantKind::Newtype, None) => {
                        body.push_str(&format!(
                            "{name}::{vname}(__x) => ::serde::Value::Object(vec![(\"{wire}\".to_string(), \
                             ::serde::Serialize::to_value(__x))]),\n"
                        ));
                    }
                    (VariantKind::Newtype, Some(_)) => {
                        panic!(
                            "serde_derive stub: internally tagged newtype variant \
                             {name}::{vname} not supported"
                        );
                    }
                    (VariantKind::Struct(fields), tag) => {
                        let bindings: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        body.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n",
                            bindings.join(", ")
                        ));
                        body.push_str(
                            "let mut __fields: ::std::vec::Vec<(::std::string::String, \
                             ::serde::Value)> = ::std::vec::Vec::new();\n",
                        );
                        if let Some(tag) = tag {
                            body.push_str(&format!(
                                "__fields.push((\"{tag}\".to_string(), \
                                 ::serde::Value::Str(\"{wire}\".to_string())));\n"
                            ));
                        }
                        for f in fields {
                            ser_field_stmt(&mut body, f, &f.name);
                        }
                        if tag.is_some() {
                            body.push_str("::serde::Value::Object(__fields)\n}\n");
                        } else {
                            body.push_str(&format!(
                                "::serde::Value::Object(vec![(\"{wire}\".to_string(), \
                                 ::serde::Value::Object(__fields))])\n}}\n"
                            ));
                        }
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}}}\n\
         }}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let mut body = String::new();
    match &item.shape {
        Shape::Named(fields) => {
            body.push_str(&format!(
                "if __value.as_object().is_none() {{\n\
                 return ::std::result::Result::Err(::serde::DeError::expected(\"object for {name}\", __value));\n\
                 }}\n"
            ));
            body.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
            for f in fields {
                body.push_str(&format!(
                    "{}: {},\n",
                    f.name,
                    de_field_expr(f, "__value", name)
                ));
            }
            body.push_str("})\n");
        }
        Shape::Tuple(1) => {
            body.push_str(&format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))\n"
            ));
        }
        Shape::Tuple(n) => {
            body.push_str(&format!(
                "let __items = match __value {{\n\
                 ::serde::Value::Array(__items) if __items.len() == {n} => __items,\n\
                 __other => return ::std::result::Result::Err(\
                 ::serde::DeError::expected(\"array of length {n} for {name}\", __other)),\n\
                 }};\n"
            ));
            body.push_str(&format!("::std::result::Result::Ok({name}(\n"));
            for i in 0..*n {
                body.push_str(&format!(
                    "::serde::Deserialize::from_value(&__items[{i}])?,\n"
                ));
            }
            body.push_str("))\n");
        }
        Shape::Enum(variants) => match &item.tag {
            Some(tag) => {
                body.push_str(&format!(
                    "let __tag = match __value.get(\"{tag}\") {{\n\
                     ::std::option::Option::Some(::serde::Value::Str(__s)) => __s.as_str(),\n\
                     ::std::option::Option::Some(__other) => return ::std::result::Result::Err(\
                     ::serde::DeError::expected(\"string tag `{tag}`\", __other)),\n\
                     ::std::option::Option::None => return ::std::result::Result::Err(\
                     ::serde::DeError::missing_field(\"{tag}\", \"{name}\")),\n\
                     }};\n\
                     match __tag {{\n"
                ));
                for v in variants {
                    let wire = apply_rename(&v.name, item.rename_all.as_deref());
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {
                            body.push_str(&format!(
                                "\"{wire}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                            ));
                        }
                        VariantKind::Newtype => panic!(
                            "serde_derive stub: internally tagged newtype variant \
                             {name}::{vname} not supported"
                        ),
                        VariantKind::Struct(fields) => {
                            body.push_str(&format!(
                                "\"{wire}\" => ::std::result::Result::Ok({name}::{vname} {{\n"
                            ));
                            for f in fields {
                                body.push_str(&format!(
                                    "{}: {},\n",
                                    f.name,
                                    de_field_expr(f, "__value", name)
                                ));
                            }
                            body.push_str("}),\n");
                        }
                    }
                }
                body.push_str(&format!(
                    "__other => ::std::result::Result::Err(::serde::DeError::custom(\
                     format!(\"unknown {name} variant `{{__other}}`\"))),\n}}\n"
                ));
            }
            None => {
                // Externally tagged: unit variants are strings, data
                // variants are single-key objects.
                body.push_str("match __value {\n");
                body.push_str("::serde::Value::Str(__s) => match __s.as_str() {\n");
                for v in variants {
                    if matches!(v.kind, VariantKind::Unit) {
                        let wire = apply_rename(&v.name, item.rename_all.as_deref());
                        body.push_str(&format!(
                            "\"{wire}\" => ::std::result::Result::Ok({name}::{vname}),\n",
                            vname = v.name
                        ));
                    }
                }
                body.push_str(&format!(
                    "__other => ::std::result::Result::Err(::serde::DeError::custom(\
                     format!(\"unknown {name} variant `{{__other}}`\"))),\n}},\n"
                ));
                body.push_str(
                    "::serde::Value::Object(__fields) if __fields.len() == 1 => {\n\
                     let (__key, __inner) = &__fields[0];\n\
                     match __key.as_str() {\n",
                );
                for v in variants {
                    let wire = apply_rename(&v.name, item.rename_all.as_deref());
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {}
                        VariantKind::Newtype => {
                            body.push_str(&format!(
                                "\"{wire}\" => ::std::result::Result::Ok({name}::{vname}(\
                                 ::serde::Deserialize::from_value(__inner)?)),\n"
                            ));
                        }
                        VariantKind::Struct(fields) => {
                            body.push_str(&format!(
                                "\"{wire}\" => ::std::result::Result::Ok({name}::{vname} {{\n"
                            ));
                            for f in fields {
                                body.push_str(&format!(
                                    "{}: {},\n",
                                    f.name,
                                    de_field_expr(f, "__inner", name)
                                ));
                            }
                            body.push_str("}),\n");
                        }
                    }
                }
                body.push_str(&format!(
                    "__other => ::std::result::Result::Err(::serde::DeError::custom(\
                     format!(\"unknown {name} variant `{{__other}}`\"))),\n}}\n}},\n"
                ));
                body.push_str(&format!(
                    "__other => ::std::result::Result::Err(\
                     ::serde::DeError::expected(\"{name} variant\", __other)),\n}}\n"
                ));
            }
        },
    }
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         {body}}}\n\
         }}\n"
    )
}
