//! Offline, API-compatible subset of the `serde` crate.
//!
//! Instead of serde's visitor architecture this stub uses a miniserde-style
//! self-describing [`Value`] tree: `Serialize` renders a type into a
//! `Value`, `Deserialize` rebuilds it from one. The companion
//! `serde_derive` stub generates impls of these traits, and the
//! `serde_json` stub converts `Value` to and from JSON text. The public
//! surface (trait names, derive attribute grammar) matches what this
//! workspace uses so code written against real serde compiles unchanged.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the JSON data model plus a lossless
/// `u64` variant so 64-bit seeds survive round-trips).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer that does not fit `i64` losslessly-signed use.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion-ordered so output is deterministic.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Borrow the object fields, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Numeric view: `I64`, `U64` and `F64` all read as `f64`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(n) => Some(n as f64),
            Value::U64(n) => Some(n as f64),
            Value::F64(x) => Some(x),
            _ => None,
        }
    }

    /// Unsigned view, accepting any non-negative integral number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::I64(n) if n >= 0 => Some(n as u64),
            Value::U64(n) => Some(n),
            Value::F64(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => Some(x as u64),
            _ => None,
        }
    }

    /// Signed view, accepting any in-range integral number.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(n) => Some(n),
            Value::U64(n) if n <= i64::MAX as u64 => Some(n as i64),
            Value::F64(x) if x.fract() == 0.0 && x.abs() <= i64::MAX as f64 => Some(x as i64),
            _ => None,
        }
    }

    /// Short human label for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Build an error from any message.
    #[must_use]
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// Standard "missing field" error.
    #[must_use]
    pub fn missing_field(field: &str, ty: &str) -> Self {
        DeError(format!("missing field `{field}` for {ty}"))
    }

    /// Standard type-mismatch error.
    #[must_use]
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {}", got.kind()))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Render `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// Types rebuildable from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from the value tree.
    ///
    /// # Errors
    /// Returns [`DeError`] when `value`'s shape does not match `Self`.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------- primitives

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(i64::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::expected("integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError::custom(format!(
                    "integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(u64::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::expected("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| DeError::custom(format!(
                    "integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}
impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let n = v
            .as_u64()
            .ok_or_else(|| DeError::expected("unsigned integer", v))?;
        usize::try_from(n).map_err(|_| DeError::custom(format!("{n} out of range for usize")))
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        Value::I64(*self as i64)
    }
}
impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let n = v.as_i64().ok_or_else(|| DeError::expected("integer", v))?;
        isize::try_from(n).map_err(|_| DeError::custom(format!("{n} out of range for isize")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::expected("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| DeError::expected("number", v))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

/// `&'static str` deserializes by interning: repeated strings share one
/// leaked allocation (snapshot restores and config loads hit the same small
/// label set, so the leak is bounded by the number of distinct labels).
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        use std::collections::HashSet;
        use std::sync::{Mutex, OnceLock};
        static INTERNED: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
        match v {
            Value::Str(s) => {
                let mut set = INTERNED
                    .get_or_init(|| Mutex::new(HashSet::new()))
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                if let Some(&existing) = set.get(s.as_str()) {
                    return Ok(existing);
                }
                let leaked: &'static str = Box::leak(s.clone().into_boxed_str());
                set.insert(leaked);
                Ok(leaked)
            }
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-character string", v)),
        }
    }
}

// ---------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == N => {
                let parsed: Result<Vec<T>, DeError> = items.iter().map(T::from_value).collect();
                parsed.map(|xs| {
                    xs.try_into()
                        .expect("length checked against N immediately above")
                })
            }
            Value::Array(items) => Err(DeError::custom(format!(
                "expected array of length {N}, got {}",
                items.len()
            ))),
            _ => Err(DeError::expected("array", v)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    Value::Array(items) => Err(DeError::custom(format!(
                        "expected tuple of length {LEN}, got {}", items.len()))),
                    _ => Err(DeError::expected("array", v)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_views_are_lenient() {
        assert_eq!(u32::from_value(&Value::I64(7)).unwrap(), 7);
        assert_eq!(i64::from_value(&Value::U64(7)).unwrap(), 7);
        assert_eq!(f64::from_value(&Value::I64(-3)).unwrap(), -3.0);
        assert_eq!(u64::from_value(&Value::F64(5.0)).unwrap(), 5);
        assert!(u32::from_value(&Value::I64(-1)).is_err());
    }

    #[test]
    fn option_null_round_trip() {
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(None::<f64>.to_value(), Value::Null);
        assert_eq!(Some(2.0f64).to_value(), Value::F64(2.0));
    }

    #[test]
    fn tuple_and_array_shapes() {
        let v = (1u32, 2.5f64, true).to_value();
        let back: (u32, f64, bool) = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, (1, 2.5, true));
        let arr: [f64; 3] = Deserialize::from_value(&[1.0, 2.0, 3.0].to_value()).unwrap();
        assert_eq!(arr, [1.0, 2.0, 3.0]);
        assert!(<[f64; 3]>::from_value(&[1.0, 2.0].to_value()).is_err());
    }
}
