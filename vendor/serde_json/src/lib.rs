//! Offline, API-compatible subset of the `serde_json` crate.
//!
//! Converts the vendored serde stub's `Value` tree to and from JSON text.
//! Floats are printed with Rust's shortest round-trippable formatting, so
//! serialize→parse is lossless (the `float_roundtrip` feature of the real
//! crate is the default and only behavior here).

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt::Write as _;

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to compact JSON.
///
/// # Errors
/// Never fails for the value model this stub supports (non-finite floats
/// serialize as `null`, as real serde_json does for `Value`).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to pretty-printed JSON (two-space indent).
///
/// # Errors
/// Same as [`to_string`].
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize from JSON text.
///
/// # Errors
/// Returns [`Error`] on malformed JSON or shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = parse(text)?;
    Ok(T::from_value(&value)?)
}

/// Parse JSON text into a [`Value`] tree.
///
/// # Errors
/// Returns [`Error`] on malformed JSON or trailing input.
pub fn parse(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

// ----------------------------------------------------------------- writer

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` is Rust's shortest round-trippable float repr and
                // always keeps a fractional point or exponent, so floats
                // stay floats across a round-trip.
                let _ = write!(out, "{x:?}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not supported; the
                            // workspace never emits them.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII digits are valid UTF-8");
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Ok(n) = text.parse::<i64>() {
            Ok(Value::I64(n))
        } else if let Ok(n) = text.parse::<u64>() {
            Ok(Value::U64(n))
        } else {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v = Value::Object(vec![
            ("a".into(), Value::F64(0.1)),
            ("b".into(), Value::I64(-7)),
            ("c".into(), Value::U64(u64::MAX)),
            (
                "d".into(),
                Value::Array(vec![
                    Value::Bool(true),
                    Value::Null,
                    Value::Str("x\"y".into()),
                ]),
            ),
        ]);
        let text = to_string(&v).unwrap();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn floats_stay_floats() {
        let text = to_string(&Value::F64(5.0)).unwrap();
        assert_eq!(text, "5.0");
        assert_eq!(parse("5.0").unwrap(), Value::F64(5.0));
        assert_eq!(parse("5").unwrap(), Value::I64(5));
    }

    #[test]
    fn shortest_float_round_trip() {
        for &x in &[0.1, 1e-300, std::f64::consts::PI, 1.0 / 3.0, 1e17] {
            let text = to_string(&Value::F64(x)).unwrap();
            assert_eq!(parse(&text).unwrap(), Value::F64(x), "{text}");
        }
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Object(vec![(
            "nested".into(),
            Value::Array(vec![Value::I64(1), Value::I64(2)]),
        )]);
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn typed_round_trip_via_stub_traits() {
        let xs = vec![1.5f64, -2.0, 0.0];
        let text = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
    }
}
