//! Offline, API-compatible subset of the `criterion` crate.
//!
//! Provides just enough surface for this workspace's benches to compile
//! and run without the real statistics engine: each benchmark body is
//! timed over a small fixed number of iterations and the mean is printed.
//! `cargo bench` therefore still exercises every bench path end to end;
//! the numbers are smoke-level, not publication-grade.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

const ITERS: u32 = 3;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: Option<usize>,
}

impl Criterion {
    /// Lower the per-benchmark sample count (accepted for API parity; the
    /// stub always runs a fixed small number of iterations).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), &mut f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API parity; see [`Criterion::sample_size`].
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Record the logical throughput of each iteration (ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Run one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let mut wrapped = |b: &mut Bencher| f(b, input);
        run_one(&label, &mut wrapped);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    #[must_use]
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier carrying only the parameter.
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Logical work per iteration (accepted, unused).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Handle passed to benchmark bodies.
pub struct Bencher {
    timed_ns: u128,
    iters: u32,
}

impl Bencher {
    /// Time `routine` over the stub's fixed iteration count.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        self.timed_ns = start.elapsed().as_nanos();
        self.iters = ITERS;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut b = Bencher {
        timed_ns: 0,
        iters: 1,
    };
    f(&mut b);
    let per_iter = b.timed_ns / u128::from(b.iters.max(1));
    println!(
        "bench {label}: ~{per_iter} ns/iter (stub, {} iters)",
        b.iters
    );
}

/// Group benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
        let mut g = c.benchmark_group("group");
        g.sample_size(10);
        g.throughput(Throughput::Elements(4));
        g.bench_function("mul", |b| b.iter(|| black_box(6u64) * black_box(7u64)));
        g.bench_with_input(BenchmarkId::from_parameter(5u32), &5u32, |b, &n| {
            b.iter(|| black_box(n) * 2)
        });
        g.finish();
    }

    #[test]
    fn api_surface_runs() {
        let mut c = Criterion::default();
        c.sample_size(10);
        sample_bench(&mut c);
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
