//! Offline, API-compatible subset of the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API
//! (`lock()` returns the guard directly; a poisoned lock just propagates
//! the inner value, matching parking_lot's no-poisoning semantics).

#![forbid(unsafe_code)]

use std::sync::{MutexGuard as StdMutexGuard, PoisonError};
use std::sync::{RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard};

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;
/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = StdReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = StdWriteGuard<'a, T>;

/// A mutex that does not poison: `lock()` always yields the guard.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
