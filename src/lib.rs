//! Facade crate re-exporting the whole Willow workspace.
//!
//! Willow (Kant, Murugan & Du, IPDPS 2011) is a hierarchical control
//! system for energy- and thermal-adaptive data centers. The workspace is
//! split into substrate crates; this facade re-exports them under short
//! names and bundles the runnable examples and integration tests.
//!
//! * [`core`] — the Willow controller itself (plus the greedy baseline).
//! * [`sim`] — the deterministic data-center simulator (paper §V-B).
//! * [`testbed`] — the emulated 3-host cluster (paper §V-C).
//! * [`thermal`], [`topology`], [`workload`], [`binpack`], [`power`],
//!   [`network`] — the substrates.
//!
//! For a one-stop import use [`prelude`]:
//!
//! ```
//! use willow::prelude::*;
//!
//! let tree = Tree::paper_fig3();
//! let specs: Vec<ServerSpec> = tree
//!     .leaves()
//!     .enumerate()
//!     .map(|(i, leaf)| {
//!         let app = Application::new(AppId(i as u32), 0, &SIM_APP_CLASSES[0]);
//!         ServerSpec::simulation_default(leaf).with_apps(vec![app])
//!     })
//!     .collect();
//! let mut willow = Willow::new(tree, specs, ControllerConfig::default()).unwrap();
//! let report = willow.step(&vec![Watts(12.0); 18], Watts(7_000.0));
//! assert_eq!(report.pingpongs(), 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use willow_binpack as binpack;
pub use willow_core as core;
pub use willow_network as network;
pub use willow_power as power;
pub use willow_sim as sim;
pub use willow_testbed as testbed;
pub use willow_thermal as thermal;
pub use willow_topology as topology;
pub use willow_workload as workload;

/// The most commonly used types, importable in one line.
pub mod prelude {
    pub use willow_core::config::{
        AllocationPolicy, ControllerConfig, PackerChoice, ReducedTargetRule, SmootherKind,
        ThermalEstimate,
    };
    pub use willow_core::controller::{ControlStats, Willow, WillowError};
    pub use willow_core::migration::{MigrationReason, MigrationRecord, TickReport};
    pub use willow_core::server::ServerSpec;
    pub use willow_power::{Battery, SolarModel, SupplyTrace};
    pub use willow_sim::{SimConfig, Simulation};
    pub use willow_testbed::{ClusterConfig, TestbedCluster};
    pub use willow_thermal::model::{DeviceThermal, ThermalParams};
    pub use willow_thermal::units::{Celsius, Kelvin, Seconds, Watts};
    pub use willow_topology::{NodeId, TopologySpec, Tree};
    pub use willow_workload::app::{
        AppId, Application, Priority, SIM_APP_CLASSES, TESTBED_APP_CLASSES,
    };
}
